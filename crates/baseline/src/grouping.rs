//! Grouping bursty tags into trends by windowed co-occurrence.
//!
//! TwitterMonitor forms "tag groups … by clustering co-occurring tags".
//! We reproduce the simple published recipe: bursty tags are vertices, an
//! edge connects two tags whose windowed Jaccard exceeds a threshold, and
//! trends are the connected components, scored by the sum of member burst
//! strengths.

use crate::burst::{BurstInfo, Trend};
use enblogue_types::{TagId, TagPair};
use enblogue_window::WindowedCounter;

/// Union-find over `n` dense indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Attach the larger root index under the smaller so component
            // representatives are deterministic.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Clusters `bursting` tags into trends using windowed co-occurrence.
///
/// `window_counts` and `window_pairs` are the same-window per-tag and
/// per-pair document counts maintained by the detector; `jaccard_threshold`
/// is the edge criterion.
pub fn group_bursty_tags(
    bursting: &[BurstInfo],
    window_counts: &WindowedCounter<TagId>,
    window_pairs: &WindowedCounter<u64>,
    jaccard_threshold: f64,
) -> Vec<Trend> {
    if bursting.is_empty() {
        return Vec::new();
    }
    // Deterministic vertex order.
    let mut infos: Vec<BurstInfo> = bursting.to_vec();
    infos.sort_unstable_by_key(|a| a.tag);

    let n = infos.len();
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        for j in i + 1..n {
            let a = infos[i].tag;
            let b = infos[j].tag;
            let ab = window_pairs.count(TagPair::new(a, b).packed());
            if ab == 0 {
                continue;
            }
            let ca = window_counts.count(a);
            let cb = window_counts.count(b);
            let union = (ca + cb).saturating_sub(ab);
            if union == 0 {
                continue;
            }
            let jaccard = ab as f64 / union as f64;
            if jaccard >= jaccard_threshold {
                uf.union(i, j);
            }
        }
    }

    // Collect components.
    let mut components: std::collections::BTreeMap<usize, (Vec<TagId>, f64)> =
        std::collections::BTreeMap::new();
    for (i, info) in infos.iter().enumerate() {
        let root = uf.find(i);
        let entry = components.entry(root).or_insert_with(|| (Vec::new(), 0.0));
        entry.0.push(info.tag);
        entry.1 += info.zscore;
    }
    let mut trends: Vec<Trend> = components
        .into_values()
        .map(|(mut tags, score)| {
            tags.sort_unstable();
            Trend { tags, score }
        })
        .collect();
    // Strongest first; tie-break on first member for determinism.
    trends.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).expect("finite scores").then_with(|| a.tags.cmp(&b.tags))
    });
    trends
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::Tick;

    fn info(tag: u32, z: f64) -> BurstInfo {
        BurstInfo { tag: TagId(tag), zscore: z, count: 10 }
    }

    fn counters(
        tags: &[(u32, u64)],
        pairs: &[((u32, u32), u64)],
    ) -> (WindowedCounter<TagId>, WindowedCounter<u64>) {
        let mut wc = WindowedCounter::new(4);
        for &(t, c) in tags {
            wc.add(Tick(0), TagId(t), c);
        }
        let mut wp = WindowedCounter::new(4);
        for &((a, b), c) in pairs {
            wp.add(Tick(0), TagPair::new(TagId(a), TagId(b)).packed(), c);
        }
        (wc, wp)
    }

    #[test]
    fn empty_input_empty_output() {
        let (wc, wp) = counters(&[], &[]);
        assert!(group_bursty_tags(&[], &wc, &wp, 0.1).is_empty());
    }

    #[test]
    fn connected_tags_merge_transitively() {
        // 1–2 and 2–3 co-occur strongly; 1–3 never do, but the component
        // still merges all three (single-link clustering).
        let (wc, wp) = counters(&[(1, 10), (2, 10), (3, 10)], &[((1, 2), 5), ((2, 3), 5)]);
        let trends = group_bursty_tags(&[info(1, 1.0), info(2, 2.0), info(3, 3.0)], &wc, &wp, 0.2);
        assert_eq!(trends.len(), 1);
        assert_eq!(trends[0].tags, vec![TagId(1), TagId(2), TagId(3)]);
        assert!((trends[0].score - 6.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_separates_weak_links() {
        let (wc, wp) = counters(&[(1, 10), (2, 10)], &[((1, 2), 1)]);
        // Jaccard = 1/19 ≈ 0.053.
        let strict = group_bursty_tags(&[info(1, 1.0), info(2, 1.0)], &wc, &wp, 0.1);
        assert_eq!(strict.len(), 2);
        let lax = group_bursty_tags(&[info(1, 1.0), info(2, 1.0)], &wc, &wp, 0.05);
        assert_eq!(lax.len(), 1);
    }

    #[test]
    fn output_is_deterministic_regardless_of_input_order() {
        let (wc, wp) = counters(&[(1, 10), (2, 10), (3, 8)], &[((1, 2), 6)]);
        let a = group_bursty_tags(&[info(3, 5.0), info(1, 1.0), info(2, 1.0)], &wc, &wp, 0.2);
        let b = group_bursty_tags(&[info(2, 1.0), info(3, 5.0), info(1, 1.0)], &wc, &wp, 0.2);
        assert_eq!(a, b);
        assert_eq!(a[0].tags, vec![TagId(3)], "solo trend with z=5 outranks pair with z=2");
    }

    #[test]
    fn union_find_path_halving_terminates() {
        let mut uf = UnionFind::new(100);
        for i in 1..100 {
            uf.union(i - 1, i);
        }
        let root = uf.find(99);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
    }
}
