//! The shared tick-stage pipeline: one implementation of the EnBlogue loop
//! for every execution surface.
//!
//! Historically the stand-alone engine and the stream DAG each carried
//! their own copy of the tick-close logic; every improvement (sharding,
//! batching, parallel close) had to land twice. This module is the single
//! home of that logic now. The paper's five phases are factored into
//! [`TickStage`]s driven by a [`StagePipeline`]:
//!
//! 1. [`SeedSelectStage`] — seed tags over the closing window (§3(i)),
//! 2. [`TermWindowStage`] — per-tag/term window bookkeeping,
//! 3. [`PairCountStage`] — candidate discovery + windowed pair counting
//!    over the sharded registry (§3(i)–(ii)),
//! 4. [`ShiftScoreStage`] — correlation + prediction-error scoring,
//!    shard-parallel when configured (§3(ii)–(iii)),
//! 5. [`RankEmitStage`] — top-k ranking emission.
//!
//! Consumers are thin adapters: [`crate::engine::EnBlogueEngine`] wraps one
//! pipeline behind the classic `process_doc`/`close_tick` API, and
//! [`crate::ops::EngineOp`] mounts the same pipeline as a DAG sink, so `N`
//! query plans / personalization subscriptions share one pass of shift
//! computation ("shared shift computation", §4.1). Shared state lives in
//! [`PipelineState`]; stages hold logic, not data, which is what lets both
//! hosts and all shards observe one consistent world.

use crate::config::{EnBlogueConfig, MeasureKind};
use crate::pairs::{ShardedPairRegistry, TrackedPairInfo};
use crate::seeds::SeedTracker;
use crate::snapshot::{self, checkpoint_file_name, corrupt, SnapReader, SnapWriter, SnapshotStats};
use crate::termwin::WindowedTermDists;
use enblogue_ingest::guard::{GuardSnapshot, GuardVerdict, SourceGuard};
use enblogue_ingest::partition::{
    annotations_of, for_each_pair, partition_docs, PartitionSpec, PartitionedBatch,
};
use enblogue_ingest::reorder::{PushOutcome, ReorderBuffer, ReorderSnapshot};
use enblogue_stats::correlation::PairCounts;
use enblogue_stats::shift::ShiftScorer;
use enblogue_telemetry::{duration_ns, Counter, EventKind, Gauge, Histogram, Telemetry};
use enblogue_types::{
    Document, EnBlogueError, FxHashSet, RankingSnapshot, TagId, TagInterner, TagPair, Tick,
    Timestamp,
};
use enblogue_window::TickSeries;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The deterministic pipeline counters: every field is a pure function
/// of the stream and the configuration, so equality across feed modes
/// and execution knobs is meaningful — and `PartialEq` is *derived*,
/// with no hand-maintained field list a new counter could dodge.
/// Wall-clock readings live in [`EngineTimings`] instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Documents processed.
    pub docs_processed: u64,
    /// Ticks closed.
    pub ticks_closed: u64,
    /// Currently tracked pairs.
    pub pairs_tracked: usize,
    /// Pairs ever discovered.
    pub pairs_discovered: u64,
    /// Pairs ever evicted.
    pub pairs_evicted: u64,
    /// Seeds selected at the last tick close.
    pub seeds_current: usize,
    /// Distinct tags alive in the window.
    pub distinct_tags: usize,
    /// Shard-store pool size of the pair registry.
    pub shards: usize,
    /// Current routing epoch (0 until the first rebalance migrates).
    pub routing_epoch: u64,
    /// Shard rebalances applied.
    pub rebalances: u64,
    /// Pair states migrated between shard stores.
    pub pairs_migrated: u64,
    /// Checkpoints written by this process (stage hook + explicit API).
    pub snapshots_taken: u64,
    /// Snapshot bytes written by this process (framing included).
    pub snapshot_bytes_written: u64,
    /// Checkpoint writes that failed (counted, never panicking — a full
    /// disk must not take the stream down with it).
    pub snapshot_failures: u64,
    /// Snapshots this pipeline was restored from (0 or 1).
    pub restores: u64,
    /// Arrivals offered to the event-time reordering buffer (accepted or
    /// not) — the arrival-stream cursor crash recovery replays from.
    /// Zero with `event_time` disabled (`docs_processed` is the cursor
    /// then).
    pub docs_arrived: u64,
    /// Documents dropped for arriving beyond the event-time lateness
    /// bound (zero with `event_time` disabled).
    pub docs_late_dropped: u64,
    /// Documents dropped by the reordering buffer's memory cap (zero
    /// with `event_time` disabled).
    pub docs_buffer_overflow: u64,
    /// Exact-duplicate documents rejected by the source guard's dedup
    /// window (zero with `source_guard` disabled).
    pub docs_deduped: u64,
    /// Documents rejected by a source's token-bucket rate cap (zero
    /// with `source_guard` disabled).
    pub docs_rate_capped: u64,
}

/// Wall-clock timing views, derived from the telemetry registry's
/// latency histograms (exact nanosecond sums, reported in microseconds —
/// the histograms additionally carry the p50/p99/max tails, see
/// [`crate::engine::EnBlogueEngine::telemetry`]). All zero when
/// telemetry is disabled. Never part of [`EngineMetrics`] equality:
/// wall clock is not stream state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTimings {
    /// Microseconds the restore took (0 if never restored).
    pub restore_micros: u64,
    /// Cumulative microseconds the close spent scoring (correlation +
    /// shift update over all tracked pairs).
    pub close_score_micros: u64,
    /// Cumulative microseconds the close spent on expiry (support
    /// eviction, the cap pass and the rebalance decision).
    pub close_expiry_micros: u64,
    /// Cumulative microseconds the close spent merging the top-k
    /// ranking.
    pub close_rank_micros: u64,
    /// Cumulative microseconds spent encoding and writing checkpoints.
    pub snapshot_write_micros: u64,
}

/// Pipeline run-time metrics: the deterministic [`EngineCounters`] plus
/// the wall-clock [`EngineTimings`] views.
///
/// Equality delegates to the counters alone — the timing struct is
/// excluded *structurally* rather than by a hand-written field list
/// that had to remember every wall-clock field. `Deref`/`DerefMut` to
/// [`EngineCounters`] keeps `metrics.docs_processed`-style call sites
/// working unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineMetrics {
    /// The deterministic counters (what `==` compares).
    pub counters: EngineCounters,
    /// The wall-clock timing views (ignored by `==`).
    pub timings: EngineTimings,
}

impl std::ops::Deref for EngineMetrics {
    type Target = EngineCounters;

    fn deref(&self) -> &EngineCounters {
        &self.counters
    }
}

impl std::ops::DerefMut for EngineMetrics {
    fn deref_mut(&mut self) -> &mut EngineCounters {
        &mut self.counters
    }
}

impl PartialEq for EngineMetrics {
    fn eq(&self, other: &Self) -> bool {
        self.counters == other.counters
    }
}

impl Eq for EngineMetrics {}

/// The pipeline's pre-registered telemetry handles. Registration
/// happens once at construction; stages record through these on the
/// warm path without ever touching the registry again (see
/// [`enblogue_telemetry`] — recording is lock-free and allocation-free).
pub(crate) struct PipelineProbes {
    pub(crate) docs: Counter,
    pub(crate) ticks: Counter,
    pub(crate) pairs_tracked: Gauge,
    pub(crate) close_score: Histogram,
    pub(crate) close_expiry: Histogram,
    pub(crate) close_rank: Histogram,
    pub(crate) snapshot_write: Histogram,
    pub(crate) restore: Histogram,
    pub(crate) dump_failures: Counter,
    pub(crate) late_drops: Counter,
    pub(crate) overflow_drops: Counter,
    pub(crate) dedup_drops: Counter,
    pub(crate) rate_drops: Counter,
}

impl PipelineProbes {
    fn new(telemetry: &Telemetry) -> Self {
        let r = telemetry.registry();
        PipelineProbes {
            docs: r.counter("engine.docs"),
            ticks: r.counter("engine.ticks"),
            pairs_tracked: r.gauge("pairs.tracked"),
            close_score: r.histogram("close.score.ns"),
            close_expiry: r.histogram("close.expiry.ns"),
            close_rank: r.histogram("close.rank.ns"),
            snapshot_write: r.histogram("snapshot.write.ns"),
            restore: r.histogram("snapshot.restore.ns"),
            dump_failures: r.counter("telemetry.dump_failures"),
            late_drops: r.counter("ingest.late_drops"),
            overflow_drops: r.counter("ingest.overflow_drops"),
            dedup_drops: r.counter("ingest.dedup_drops"),
            rate_drops: r.counter("ingest.rate_drops"),
        }
    }
}

/// The state shared by all stages of one pipeline.
///
/// Stages mutate this through their hooks; hosts read it through the
/// accessor methods. Keeping state here (rather than inside stages) is
/// what makes the stages reorderable, testable and shareable between the
/// engine facade and the DAG operator.
pub struct PipelineState {
    pub(crate) config: EnBlogueConfig,
    pub(crate) seed_tracker: SeedTracker,
    pub(crate) registry: ShardedPairRegistry,
    pub(crate) scorer: ShiftScorer,
    /// Windowed total document volume.
    pub(crate) doc_series: TickSeries,
    /// Per-tag term distributions (JS-divergence measure only).
    pub(crate) term_dists: Option<WindowedTermDists>,
    /// Seeds of the last closed tick.
    pub(crate) seeds: FxHashSet<TagId>,
    pub(crate) latest: Option<RankingSnapshot>,
    pub(crate) docs_processed: u64,
    pub(crate) ticks_closed: u64,
    /// Snapshot activity counters (process-local: deliberately *not*
    /// serialized — a resumed pipeline starts them fresh, with `restores`
    /// recording the resume itself).
    pub(crate) snapshots_taken: u64,
    pub(crate) snapshot_bytes: u64,
    pub(crate) snapshot_failures: u64,
    pub(crate) restores: u64,
    /// The observability hub: metric registry + event journal
    /// (process-local, like the snapshot counters — wall clock is not
    /// stream state and none of this is serialized).
    pub(crate) telemetry: Telemetry,
    /// Pre-registered handles the stages record through.
    pub(crate) probes: PipelineProbes,
    /// The event-time reordering buffer (`Some` iff
    /// `config.event_time.enabled`). Serialized — pending documents and
    /// drop counters included — so resume continues bit-exactly.
    pub(crate) event: Option<ReorderBuffer>,
    /// The per-source guard (`Some` iff `config.source_guard.enabled`).
    /// Serialized: dedup keys, token buckets and counters all restore.
    pub(crate) guard: Option<SourceGuard>,
}

impl PipelineState {
    fn new(config: EnBlogueConfig) -> Self {
        config.validate().expect("invalid engine configuration");
        let term_dists = match config.measure {
            MeasureKind::JsDivergence => Some(WindowedTermDists::new(config.window_ticks)),
            MeasureKind::Set(_) => None,
        };
        let mut registry = ShardedPairRegistry::with_rebalance(
            config.shards,
            config.window_ticks,
            config.half_life_ms,
            config.min_pair_support,
            config.max_tracked_pairs,
            // The automatic active-store floor resolves against the
            // close mode: a parallel close keeps the whole pool busy,
            // a serial close may consolidate for locality.
            config.rebalance.resolved(config.shards, config.parallel_close),
        );
        registry.set_scoring(config.scoring_mode);
        let telemetry = if config.telemetry.enabled {
            Telemetry::new(config.telemetry.journal_capacity)
        } else {
            Telemetry::disabled()
        };
        let probes = PipelineProbes::new(&telemetry);
        registry.attach_telemetry(&telemetry);
        let event = Self::build_event_buffer(&config);
        let guard = Self::build_guard(&config);
        PipelineState {
            seed_tracker: SeedTracker::new(
                config.seed_strategy,
                config.seed_count,
                config.min_seed_count,
                config.window_ticks,
            ),
            registry,
            scorer: ShiftScorer::new(config.predictor, config.normalization),
            doc_series: TickSeries::new(config.window_ticks),
            term_dists,
            seeds: FxHashSet::default(),
            latest: None,
            docs_processed: 0,
            ticks_closed: 0,
            snapshots_taken: 0,
            snapshot_bytes: 0,
            snapshot_failures: 0,
            restores: 0,
            telemetry,
            probes,
            event,
            guard,
            config,
        }
    }

    fn build_event_buffer(config: &EnBlogueConfig) -> Option<ReorderBuffer> {
        config.event_time.enabled.then(|| {
            ReorderBuffer::new(
                config.tick_spec,
                config.event_time.bounded_lateness,
                config.event_time.max_buffered_docs,
            )
        })
    }

    fn build_guard(config: &EnBlogueConfig) -> Option<SourceGuard> {
        config.source_guard.enabled.then(|| {
            SourceGuard::new(
                config.source_guard.dedup_window_ticks,
                config.source_guard.rate_limit_per_tick,
                config.source_guard.effective_burst(),
            )
        })
    }

    /// The pipeline's observability hub (metric registry, event
    /// journal, exporters).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &EnBlogueConfig {
        &self.config
    }

    /// The seeds selected at the last tick close.
    pub fn seeds(&self) -> &FxHashSet<TagId> {
        &self.seeds
    }

    /// The most recent ranking, if any tick has been closed.
    pub fn latest_snapshot(&self) -> Option<&RankingSnapshot> {
        self.latest.as_ref()
    }

    /// The sharded pair registry (read access for inspection stages).
    pub fn registry(&self) -> &ShardedPairRegistry {
        &self.registry
    }

    /// Ticks closed so far (the engine-side [`crate::query::QueryView`]
    /// epoch).
    pub fn ticks_closed(&self) -> u64 {
        self.ticks_closed
    }

    /// Exports everything the [`crate::query::QueryView`] API answers
    /// about the latest closed tick into `out`: the ranking, the sorted
    /// seed set, and the per-pair stat columns at the requested `detail`
    /// (ranked pairs only, or the full tracked population — see
    /// [`crate::query::PublishDetail`]).
    ///
    /// `out` is cleared and refilled **in place**: ranking entries, seed
    /// and stat columns all reuse retained capacity, so a warm steady-
    /// state export performs zero heap allocations (pinned by
    /// `close_allocs.rs`). Tag names are *not* resolved here — the
    /// pipeline has no interner; callers follow up with
    /// [`crate::query::ViewData::resolve_names`].
    pub fn export_view(
        &self,
        detail: crate::query::PublishDetail,
        out: &mut crate::query::ViewData,
    ) {
        out.detail = detail;
        out.info_tick = self.latest.as_ref().map_or(Tick::ZERO, |s| s.tick);
        out.now = self.latest.as_ref().map_or(Timestamp::ZERO, |s| s.time);
        match (&mut out.ranking, &self.latest) {
            (Some(dst), Some(src)) => {
                // Field-wise copy instead of `clone()`: `Vec::clone_from`
                // reuses the destination's capacity.
                dst.tick = src.tick;
                dst.time = src.time;
                dst.ranked.clone_from(&src.ranked);
            }
            (dst, src) => *dst = src.clone(),
        }
        out.seeds.clear();
        out.seeds.extend(self.seeds.iter().copied());
        out.seeds.sort_unstable();
        match detail {
            crate::query::PublishDetail::Ranked => {
                let ranked = self.latest.as_ref().map_or(&[][..], |s| s.ranked.as_slice());
                self.registry.export_ranked_into(ranked, out);
            }
            crate::query::PublishDetail::Full => self.registry.export_full_into(out),
        }
    }

    /// Current run-time counters and timing views.
    pub fn metrics(&self) -> EngineMetrics {
        let registry_stats = self.registry.stats();
        EngineMetrics {
            counters: EngineCounters {
                docs_processed: self.docs_processed,
                ticks_closed: self.ticks_closed,
                pairs_tracked: self.registry.len(),
                pairs_discovered: self.registry.discovered_total(),
                pairs_evicted: self.registry.evicted_total(),
                seeds_current: self.seeds.len(),
                distinct_tags: self.seed_tracker.distinct_tags(),
                shards: self.registry.shard_count(),
                routing_epoch: registry_stats.routing_epoch,
                rebalances: registry_stats.rebalances,
                pairs_migrated: registry_stats.migrated_pairs,
                snapshots_taken: self.snapshots_taken,
                snapshot_bytes_written: self.snapshot_bytes,
                snapshot_failures: self.snapshot_failures,
                restores: self.restores,
                docs_arrived: self.event.as_ref().map_or(0, |b| b.arrivals()),
                docs_late_dropped: self.event.as_ref().map_or(0, |b| b.late_dropped()),
                docs_buffer_overflow: self.event.as_ref().map_or(0, |b| b.overflow_dropped()),
                docs_deduped: self.guard.as_ref().map_or(0, |g| g.deduped()),
                docs_rate_capped: self.guard.as_ref().map_or(0, |g| g.rate_capped()),
            },
            // The timing views are the histograms' exact nanosecond
            // sums (bucketing only approximates quantiles, never the
            // sum), so these read like the old accumulators did — and
            // zero with telemetry off.
            timings: EngineTimings {
                restore_micros: self.probes.restore.sum() / 1_000,
                close_score_micros: self.probes.close_score.sum() / 1_000,
                close_expiry_micros: self.probes.close_expiry.sum() / 1_000,
                close_rank_micros: self.probes.close_rank.sum() / 1_000,
                snapshot_write_micros: self.probes.snapshot_write.sum() / 1_000,
            },
        }
    }

    /// Serializes the complete pipeline state plus the host's tick
    /// cursors into a snapshot payload (see [`crate::snapshot`] for the
    /// framing and section order).
    pub(crate) fn encode_snapshot(
        &self,
        last_closed: Option<Tick>,
        first_open: Option<Tick>,
    ) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u64(snapshot::config_fingerprint(&self.config));
        w.opt_tick(last_closed);
        w.opt_tick(first_open);
        w.u64(self.docs_processed);
        w.u64(self.ticks_closed);
        let mut seeds: Vec<TagId> = self.seeds.iter().copied().collect();
        seeds.sort_unstable();
        w.usize(seeds.len());
        for seed in seeds {
            w.tag(seed);
        }
        match &self.latest {
            Some(latest) => {
                w.u8(1);
                w.tick(latest.tick);
                w.timestamp(latest.time);
                w.usize(latest.ranked.len());
                for &(pair, score) in &latest.ranked {
                    w.u64(pair.packed());
                    w.f64(score);
                }
            }
            None => w.u8(0),
        }
        w.opt_tick(self.doc_series.newest_tick());
        w.usize(self.doc_series.len());
        for value in self.doc_series.values() {
            w.f64(value);
        }
        w.f64(self.doc_series.sum());
        self.seed_tracker.encode_snapshot(&mut w);
        match &self.term_dists {
            Some(term_dists) => {
                w.u8(1);
                term_dists.encode_snapshot(&mut w);
            }
            None => w.u8(0),
        }
        self.registry.encode_snapshot(&mut w);
        // Event-time robustness sections (format version 2): the
        // reordering buffer — pending documents included, so a resumed
        // pipeline replays the arrival stream from `arrivals` and
        // continues bit-exactly — and the source guard's dedup keys,
        // token buckets (bit-pattern f64 tokens) and counters.
        match &self.event {
            Some(buffer) => {
                w.u8(1);
                encode_reorder(&mut w, &buffer.to_snapshot());
            }
            None => w.u8(0),
        }
        match &self.guard {
            Some(guard) => {
                w.u8(1);
                encode_guard(&mut w, &guard.to_snapshot());
            }
            None => w.u8(0),
        }
        w.into_bytes()
    }

    /// Rebuilds pipeline state (and the host's tick cursors) from a
    /// payload produced by [`PipelineState::encode_snapshot`], under
    /// `config` — which must fingerprint-match the checkpointing
    /// configuration (every knob except the snapshot section itself).
    pub(crate) fn decode_snapshot(
        config: EnBlogueConfig,
        r: &mut SnapReader<'_>,
    ) -> Result<(Self, Option<Tick>, Option<Tick>), EnBlogueError> {
        config.validate()?;
        let fingerprint = r.u64()?;
        if fingerprint != snapshot::config_fingerprint(&config) {
            return Err(EnBlogueError::SnapshotConfigMismatch(
                "the snapshot was taken under a different engine configuration; resume with the \
                 exact configuration that produced it (the snapshot section itself may differ)"
                    .into(),
            ));
        }
        let last_closed = r.opt_tick()?;
        let first_open = r.opt_tick()?;
        let docs_processed = r.u64()?;
        let ticks_closed = r.u64()?;
        let seed_count = r.seq(4)?;
        let mut seeds = FxHashSet::default();
        for _ in 0..seed_count {
            seeds.insert(r.tag()?);
        }
        let latest = match r.u8()? {
            0 => None,
            1 => {
                let tick = r.tick()?;
                let time = r.timestamp()?;
                let ranked_len = r.seq(16)?;
                let mut ranked = Vec::with_capacity(ranked_len);
                for _ in 0..ranked_len {
                    let packed = r.u64()?;
                    let score = r.f64()?;
                    ranked.push((TagPair::from_packed(packed), score));
                }
                Some(RankingSnapshot { tick, time, ranked })
            }
            tag => return Err(corrupt(format!("invalid snapshot-presence tag {tag}"))),
        };
        let doc_newest = r.opt_tick()?;
        let doc_values_len = r.seq(8)?;
        if doc_values_len > config.window_ticks {
            return Err(corrupt(format!(
                "document series holds {doc_values_len} values, window spans {}",
                config.window_ticks
            )));
        }
        if doc_newest.is_none() && doc_values_len > 0 {
            return Err(corrupt("document series values without a newest tick"));
        }
        let mut doc_values = Vec::with_capacity(doc_values_len);
        for _ in 0..doc_values_len {
            doc_values.push(r.f64()?);
        }
        let doc_sum = r.f64()?;
        let doc_series =
            TickSeries::from_parts(config.window_ticks, doc_newest, doc_values, doc_sum);
        let seed_tracker = SeedTracker::decode_snapshot(
            r,
            config.seed_strategy,
            config.seed_count,
            config.min_seed_count,
            config.window_ticks,
        )?;
        let term_dists = match (r.u8()?, config.measure) {
            (1, MeasureKind::JsDivergence) => {
                Some(WindowedTermDists::decode_snapshot(r, config.window_ticks)?)
            }
            (0, MeasureKind::Set(_)) => None,
            (0 | 1, _) => {
                return Err(EnBlogueError::SnapshotConfigMismatch(
                    "term-distribution state does not match the configured measure".into(),
                ))
            }
            (tag, _) => return Err(corrupt(format!("invalid term-dists tag {tag}"))),
        };
        let mut registry = ShardedPairRegistry::decode_snapshot(
            r,
            config.shards,
            config.window_ticks,
            config.half_life_ms,
            config.min_pair_support,
            config.max_tracked_pairs,
            config.rebalance.resolved(config.shards, config.parallel_close),
        )?;
        registry.set_scoring(config.scoring_mode);
        let event = match (r.u8()?, config.event_time.enabled) {
            (1, true) => {
                let snap = decode_reorder(r)?;
                Some(ReorderBuffer::from_snapshot(
                    config.tick_spec,
                    config.event_time.bounded_lateness,
                    config.event_time.max_buffered_docs,
                    snap,
                ))
            }
            (0, false) => None,
            (0 | 1, _) => {
                return Err(EnBlogueError::SnapshotConfigMismatch(
                    "event-time buffer state does not match the configured policy".into(),
                ))
            }
            (tag, _) => return Err(corrupt(format!("invalid event-time tag {tag}"))),
        };
        let guard = match (r.u8()?, config.source_guard.enabled) {
            (1, true) => {
                let snap = decode_guard(r)?;
                Some(SourceGuard::from_snapshot(
                    config.source_guard.dedup_window_ticks,
                    config.source_guard.rate_limit_per_tick,
                    config.source_guard.effective_burst(),
                    snap,
                ))
            }
            (0, false) => None,
            (0 | 1, _) => {
                return Err(EnBlogueError::SnapshotConfigMismatch(
                    "source-guard state does not match the configured policy".into(),
                ))
            }
            (tag, _) => return Err(corrupt(format!("invalid source-guard tag {tag}"))),
        };
        let telemetry = if config.telemetry.enabled {
            Telemetry::new(config.telemetry.journal_capacity)
        } else {
            Telemetry::disabled()
        };
        let probes = PipelineProbes::new(&telemetry);
        registry.attach_telemetry(&telemetry);
        let state = PipelineState {
            seed_tracker,
            registry,
            scorer: ShiftScorer::new(config.predictor, config.normalization),
            doc_series,
            term_dists,
            seeds,
            latest,
            docs_processed,
            ticks_closed,
            snapshots_taken: 0,
            snapshot_bytes: 0,
            snapshot_failures: 0,
            restores: 0,
            telemetry,
            probes,
            event,
            guard,
            config,
        };
        Ok((state, last_closed, first_open))
    }
}

// ---------------------------------------------------------------------------
// Event-time / guard snapshot codec
// ---------------------------------------------------------------------------

fn encode_doc(w: &mut SnapWriter, doc: &Document) {
    w.u64(doc.id);
    w.timestamp(doc.timestamp);
    w.u32(doc.source.0);
    w.usize(doc.tags.len());
    for &tag in &doc.tags {
        w.tag(tag);
    }
    w.usize(doc.entities.len());
    for &entity in &doc.entities {
        w.tag(entity);
    }
    w.usize(doc.terms.len());
    for &term in &doc.terms {
        w.tag(term);
    }
    match &doc.text {
        Some(text) => {
            w.u8(1);
            w.bytes(text.as_bytes());
        }
        None => w.u8(0),
    }
}

fn decode_doc(r: &mut SnapReader<'_>) -> Result<Document, EnBlogueError> {
    let id = r.u64()?;
    let timestamp = r.timestamp()?;
    let source = enblogue_types::SourceId(r.u32()?);
    let read_tags = |r: &mut SnapReader<'_>| -> Result<Vec<TagId>, EnBlogueError> {
        let len = r.seq(4)?;
        let mut tags = Vec::with_capacity(len);
        for _ in 0..len {
            tags.push(r.tag()?);
        }
        Ok(tags)
    };
    let tags = read_tags(r)?;
    let entities = read_tags(r)?;
    let terms = read_tags(r)?;
    let text = match r.u8()? {
        0 => None,
        1 => Some(
            String::from_utf8(r.bytes()?)
                .map_err(|_| corrupt("buffered document text is not UTF-8"))?,
        ),
        tag => return Err(corrupt(format!("invalid document-text tag {tag}"))),
    };
    // Field assignment instead of builder methods: the buffered document
    // was already normalized before checkpointing, and re-normalizing
    // must not get a chance to reorder anything.
    let mut doc = Document::builder(id, timestamp).source(source).build();
    doc.tags = tags;
    doc.entities = entities;
    doc.terms = terms;
    doc.text = text;
    Ok(doc)
}

fn encode_reorder(w: &mut SnapWriter, snap: &ReorderSnapshot) {
    w.u64(snap.arrivals);
    w.u64(snap.late_dropped);
    w.u64(snap.overflow_dropped);
    w.opt_tick(snap.max_tick_seen);
    w.opt_tick(snap.emitted_through);
    w.usize(snap.pending.len());
    for (tick, docs) in &snap.pending {
        w.tick(*tick);
        w.usize(docs.len());
        for doc in docs {
            encode_doc(w, doc);
        }
    }
}

fn decode_reorder(r: &mut SnapReader<'_>) -> Result<ReorderSnapshot, EnBlogueError> {
    let arrivals = r.u64()?;
    let late_dropped = r.u64()?;
    let overflow_dropped = r.u64()?;
    let max_tick_seen = r.opt_tick()?;
    let emitted_through = r.opt_tick()?;
    let tick_count = r.seq(16)?;
    let mut pending = Vec::with_capacity(tick_count);
    for _ in 0..tick_count {
        let tick = r.tick()?;
        let doc_count = r.seq(21)?;
        let mut docs = Vec::with_capacity(doc_count);
        for _ in 0..doc_count {
            docs.push(decode_doc(r)?);
        }
        pending.push((tick, docs));
    }
    Ok(ReorderSnapshot {
        arrivals,
        late_dropped,
        overflow_dropped,
        max_tick_seen,
        emitted_through,
        pending,
    })
}

fn encode_guard(w: &mut SnapWriter, snap: &GuardSnapshot) {
    w.u64(snap.admitted);
    w.u64(snap.deduped);
    w.u64(snap.rate_capped);
    w.opt_tick(snap.current_tick);
    w.usize(snap.dedup.len());
    for &(source, doc, tick) in &snap.dedup {
        w.u32(source.0);
        w.u64(doc);
        w.tick(tick);
    }
    w.usize(snap.buckets.len());
    for &(source, tokens, last_refill) in &snap.buckets {
        w.u32(source.0);
        w.f64(tokens);
        w.tick(last_refill);
    }
}

fn decode_guard(r: &mut SnapReader<'_>) -> Result<GuardSnapshot, EnBlogueError> {
    let admitted = r.u64()?;
    let deduped = r.u64()?;
    let rate_capped = r.u64()?;
    let current_tick = r.opt_tick()?;
    let dedup_len = r.seq(20)?;
    let mut dedup = Vec::with_capacity(dedup_len);
    for _ in 0..dedup_len {
        let source = enblogue_types::SourceId(r.u32()?);
        let doc = r.u64()?;
        let tick = r.tick()?;
        dedup.push((source, doc, tick));
    }
    let bucket_len = r.seq(20)?;
    let mut buckets = Vec::with_capacity(bucket_len);
    for _ in 0..bucket_len {
        let source = enblogue_types::SourceId(r.u32()?);
        let tokens = r.f64()?;
        let last_refill = r.tick()?;
        buckets.push((source, tokens, last_refill));
    }
    Ok(GuardSnapshot { admitted, deduped, rate_capped, current_tick, dedup, buckets })
}

/// One phase of the per-tick computation.
///
/// Stages receive every document of the open tick through
/// [`TickStage::on_doc`] and run their close-phase work in pipeline order
/// through [`TickStage::on_close`]. Both hooks default to no-ops so a
/// stage can be doc-only or close-only.
pub trait TickStage: Send {
    /// Stage name, for introspection and tracing.
    fn name(&self) -> &'static str;

    /// Observes one document of the open `tick`. `annotations` is the
    /// document's effective annotation set (tags, merged with entities when
    /// the configuration says so), computed once by the driver.
    fn on_doc(
        &mut self,
        _state: &mut PipelineState,
        _tick: Tick,
        _doc: &Document,
        _annotations: &[TagId],
    ) {
    }

    /// [`TickStage::on_doc`] for batched ingestion, where the document's
    /// pair observations have already been extracted into a shard-
    /// partitioned batch that the driver applies to the registry
    /// separately. Stages whose per-document work *is* pair observation
    /// override this with a no-op; everything else keeps the default
    /// (identical to the unbatched hook).
    fn on_doc_partitioned(
        &mut self,
        state: &mut PipelineState,
        tick: Tick,
        doc: &Document,
        annotations: &[TagId],
    ) {
        self.on_doc(state, tick, doc, annotations);
    }

    /// Runs this stage's share of the close of `tick` (`now` = stream time
    /// of the tick end).
    fn on_close(&mut self, _state: &mut PipelineState, _tick: Tick, _now: Timestamp) {}
}

/// Stage (i): selects the seed set over the window ending at the closing
/// tick.
pub struct SeedSelectStage;

impl TickStage for SeedSelectStage {
    fn name(&self) -> &'static str {
        "seed-select"
    }

    fn on_close(&mut self, state: &mut PipelineState, tick: Tick, _now: Timestamp) {
        state.seeds = state.seed_tracker.close_tick(tick);
    }
}

/// Window bookkeeping: per-tag counts, document volume and (for the
/// JS-divergence measure) per-tag term distributions.
pub struct TermWindowStage;

impl TickStage for TermWindowStage {
    fn name(&self) -> &'static str {
        "term-window"
    }

    fn on_doc(
        &mut self,
        state: &mut PipelineState,
        tick: Tick,
        doc: &Document,
        annotations: &[TagId],
    ) {
        // Windowed counters never move backwards: a late document counts
        // into the open tick's slot.
        state.doc_series.record(tick.max(state.doc_series.newest_tick().unwrap_or(tick)), 1.0);
        for &tag in annotations {
            state.seed_tracker.observe(tick, tag);
        }
        if let Some(term_dists) = state.term_dists.as_mut() {
            term_dists.observe_doc(tick, doc, state.config.use_entities);
        }
    }

    fn on_close(&mut self, state: &mut PipelineState, tick: Tick, _now: Timestamp) {
        // Align the windows to the closing tick (gap ticks expire data).
        state.doc_series.advance_to(tick);
        if let Some(term_dists) = state.term_dists.as_mut() {
            term_dists.close_tick(tick);
        }
    }
}

/// Stages (i)–(ii): windowed pair counting per document, and promotion of
/// this tick's seeded co-occurrences into tracked candidates on close.
pub struct PairCountStage;

impl TickStage for PairCountStage {
    fn name(&self) -> &'static str {
        "pair-count"
    }

    fn on_doc(
        &mut self,
        state: &mut PipelineState,
        tick: Tick,
        _doc: &Document,
        annotations: &[TagId],
    ) {
        // Same pair enumeration the partitioner uses — one definition of
        // the pair space for both feed paths.
        for_each_pair(annotations, |packed| state.registry.observe_pair(tick, packed));
    }

    /// In partitioned batches the pair observations arrive pre-bucketed
    /// and are applied by the driver in one shard-parallel pass — nothing
    /// left to do per document.
    fn on_doc_partitioned(
        &mut self,
        _state: &mut PipelineState,
        _tick: Tick,
        _doc: &Document,
        _annotations: &[TagId],
    ) {
    }

    fn on_close(&mut self, state: &mut PipelineState, tick: Tick, _now: Timestamp) {
        state.registry.advance_to(tick);
        // Candidate discovery: pairs that co-occurred this tick and contain
        // at least one seed. For set-overlap measures, histories are
        // backfilled with the zero correlation the pair had before
        // discovery (capped by stream age). The term-distribution measure
        // gets no backfill: two tags' language similarity is generally far
        // from zero even without co-occurrence, so pretending it was zero
        // would turn every discovery into a spurious full-scale shift.
        let backfill = match state.config.measure {
            MeasureKind::Set(_) => tick.0.min(state.config.window_ticks as u64 - 1) as usize,
            MeasureKind::JsDivergence => 0,
        };
        let parallel = state.config.parallel_close;
        state.registry.discover_seeded(&state.seeds, tick, backfill, parallel);
    }
}

/// Stages (ii)–(iii): correlation update and shift scoring for every
/// tracked pair, fanned out over the registry shards, followed by
/// eviction.
///
/// This is the engine's steady-state hot loop; each shard walks its
/// slab-resident pair state linearly (dense key/score columns, histories
/// scored in place from the strided arena — see [`crate::slab`]), so a
/// warm close touches no allocator and no per-pair heap blocks.
pub struct ShiftScoreStage;

impl TickStage for ShiftScoreStage {
    fn name(&self) -> &'static str {
        "shift-score"
    }

    fn on_close(&mut self, state: &mut PipelineState, tick: Tick, now: Timestamp) {
        let n = state.doc_series.sum().round() as u64;
        let measure = state.config.measure;
        let parallel = state.config.parallel_close;
        // Split borrows: the registry mutates shard-locally while the
        // correlation closure reads the (frozen) window statistics.
        let PipelineState { registry, seed_tracker, term_dists, scorer, probes, .. } = state;
        let seed_tracker = &*seed_tracker;
        let term_dists = &*term_dists;
        let score_span = enblogue_telemetry::span!(probes.close_score);
        registry.score_all(tick, now, scorer, parallel, move |pair, ab| match measure {
            MeasureKind::Set(measure) => {
                let a = seed_tracker.windowed_count(pair.lo());
                let b = seed_tracker.windowed_count(pair.hi());
                measure.compute(PairCounts::new(a, b, ab, n))
            }
            MeasureKind::JsDivergence => {
                // The similarity is computed regardless of current
                // co-occurrence: its *level* is background language
                // overlap, and only *rises* (convergence of term usage)
                // register as shifts. Pairs still need co-occurrence
                // support to stay tracked (eviction) and to be scored
                // (support gate in the registry), so two independently
                // similar tags never alarm without joint activity.
                term_dists
                    .as_ref()
                    .expect("term distributions allocated for JS measure")
                    .js_similarity(pair.lo(), pair.hi())
            }
        });
        score_span.finish();
        let _expiry_span = enblogue_telemetry::span!(probes.close_expiry);
        registry.evict_parallel(tick, now, parallel);
        // Tick-aligned rebalance decision, after eviction so the policy
        // sees the post-eviction population. Migration preserves every
        // pair's state bit-for-bit, so rankings are unaffected — pinned
        // by `tests/stage_parity.rs` across rebalance on/off grids.
        registry.maybe_rebalance(tick);
    }
}

/// The sink stage: merges the shard rankings into the tick's
/// [`RankingSnapshot`].
pub struct RankEmitStage;

impl TickStage for RankEmitStage {
    fn name(&self) -> &'static str {
        "rank-emit"
    }

    fn on_close(&mut self, state: &mut PipelineState, tick: Tick, now: Timestamp) {
        let _rank_span = enblogue_telemetry::span!(state.probes.close_rank);
        let snapshot = RankingSnapshot {
            tick,
            time: now,
            ranked: state.registry.ranking(state.config.k, now),
        };
        state.latest = Some(snapshot);
    }
}

/// The checkpoint stage: periodically serializes the full pipeline state
/// to disk at tick close (mounted after `rank-emit` when
/// [`crate::config::SnapshotConfig`] is enabled, so the written snapshot
/// contains the tick's finished ranking).
///
/// Failures are counted ([`EngineCounters::snapshot_failures`]), never
/// raised: a transiently full disk must not take a continuously running
/// stream down, and the previous checkpoint is still on disk (writes are
/// atomic temp-file + rename).
pub struct CheckpointStage;

impl TickStage for CheckpointStage {
    fn name(&self) -> &'static str {
        "checkpoint"
    }

    fn on_close(&mut self, state: &mut PipelineState, tick: Tick, _now: Timestamp) {
        let interval = state.config.snapshot.interval_ticks;
        if interval == 0 || !state.ticks_closed.is_multiple_of(interval) {
            return;
        }
        let dir = PathBuf::from(&state.config.snapshot.directory);
        let retention = state.config.snapshot.retention;
        // Encode + write are one timed unit — that is the wall-clock
        // cost a checkpoint adds to its tick close.
        let write_started = state.probes.snapshot_write.enabled().then(Instant::now);
        // This stage runs inside `close_tick`, so the closing tick *is*
        // the cursor (and `first_open` is moot once a tick is closed).
        let payload = state.encode_snapshot(Some(tick), None);
        match snapshot::write_snapshot_file(&dir.join(checkpoint_file_name(tick)), &payload) {
            Ok(bytes) => {
                state.snapshots_taken += 1;
                state.snapshot_bytes += bytes;
                let ns = write_started.map_or(0, duration_ns);
                state.probes.snapshot_write.record(ns);
                state.telemetry.journal().record(
                    EventKind::CheckpointWrite,
                    tick.0,
                    bytes,
                    ns / 1_000,
                );
                snapshot::prune_checkpoints(&dir, retention);
            }
            Err(_) => {
                state.snapshot_failures += 1;
                state.telemetry.journal().record(
                    EventKind::CheckpointFailure,
                    tick.0,
                    state.snapshot_failures,
                    0,
                );
            }
        }
    }
}

/// The telemetry-dump stage: periodically writes the Prometheus text
/// export, the metrics JSONL and the journal JSONL into the configured
/// directory at tick close (mounted last when
/// [`crate::config::TelemetryConfig::dumps_enabled`], so a dump sees
/// the tick's finished ranking and close timings). Like checkpoint
/// writes, dump failures are counted (`telemetry.dump_failures`), never
/// raised.
pub struct TelemetryDumpStage;

impl TickStage for TelemetryDumpStage {
    fn name(&self) -> &'static str {
        "telemetry-dump"
    }

    fn on_close(&mut self, state: &mut PipelineState, _tick: Tick, _now: Timestamp) {
        let interval = state.config.telemetry.dump_every_ticks;
        if interval == 0 || !state.ticks_closed.is_multiple_of(interval) {
            return;
        }
        let dir = PathBuf::from(&state.config.telemetry.dump_directory);
        let result = std::fs::create_dir_all(&dir)
            .and_then(|()| {
                std::fs::write(dir.join("metrics.prom"), state.telemetry.prometheus_text())
            })
            .and_then(|()| {
                std::fs::write(dir.join("metrics.jsonl"), state.telemetry.metrics_jsonl())
            })
            .and_then(|()| {
                std::fs::write(dir.join("journal.jsonl"), state.telemetry.journal().to_jsonl())
            });
        if result.is_err() {
            state.probes.dump_failures.inc();
        }
    }
}

/// The shared driver: feeds documents to every stage and closes ticks
/// through the ordered stage list.
///
/// This is the single implementation of EnBlogue's tick semantics; every
/// execution surface wraps it. Feed with [`StagePipeline::process_doc`]
/// (or batched via [`StagePipeline::process_docs`] /
/// [`StagePipeline::process_partitioned`]), close with
/// [`StagePipeline::close_tick`] or the gap-filling
/// [`StagePipeline::close_through`], or drive a whole archive with
/// [`StagePipeline::run_replay`]. Custom stages appended with
/// [`StagePipeline::push_stage`] run after `rank-emit` and see each
/// tick's finished snapshot.
pub struct StagePipeline {
    state: PipelineState,
    stages: Vec<Box<dyn TickStage>>,
    /// Per-stage close-latency histograms (`stage.close.ns{stage=…}`),
    /// index-aligned with `stages`; registered once at assembly.
    stage_spans: Vec<Histogram>,
    /// Scratch buffer for per-document annotation sets.
    annotation_buf: Vec<TagId>,
    last_closed: Option<Tick>,
    /// Tick of the first processed document — where gap closing starts
    /// when no tick has been closed yet.
    first_open: Option<Tick>,
    /// Batches that arrived bucketed under a superseded routing epoch and
    /// had to be re-partitioned (timing-dependent, so deliberately *not*
    /// part of [`EngineMetrics`], which tests compare across feed modes).
    stale_repartitions: u64,
    /// Scratch for documents the reordering buffer releases (reused
    /// across [`StagePipeline::offer_doc`] calls).
    event_ready_buf: Vec<Document>,
    /// Drop totals already journaled (late+overflow, deduped,
    /// rate-capped) — close-time journal events carry per-tick deltas.
    /// Process-local like the journal itself; a resumed pipeline starts
    /// from the restored totals so the first close reports only new
    /// drops.
    drops_reported: [u64; 3],
}

impl StagePipeline {
    /// A pipeline running the five standard EnBlogue stages.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (use
    /// [`EnBlogueConfig::builder`] to get a validated one).
    pub fn new(config: EnBlogueConfig) -> Self {
        Self::assemble(PipelineState::new(config), None, None)
    }

    /// Builds a pipeline around prepared state: the standard stages, plus
    /// the checkpoint stage when the configuration enables it.
    fn assemble(state: PipelineState, last_closed: Option<Tick>, first_open: Option<Tick>) -> Self {
        let mut stages = Self::standard_stages();
        if state.config.snapshot.enabled() {
            stages.push(Box::new(CheckpointStage));
        }
        if state.config.telemetry.dumps_enabled() {
            stages.push(Box::new(TelemetryDumpStage));
        }
        let stage_spans = stages
            .iter()
            .map(|stage| {
                state.telemetry.registry().histogram_labeled(
                    "stage.close.ns",
                    "stage",
                    stage.name(),
                )
            })
            .collect();
        let drops_reported = [
            state.event.as_ref().map_or(0, |b| b.late_dropped() + b.overflow_dropped()),
            state.guard.as_ref().map_or(0, |g| g.deduped()),
            state.guard.as_ref().map_or(0, |g| g.rate_capped()),
        ];
        StagePipeline {
            state,
            stages,
            stage_spans,
            annotation_buf: Vec::with_capacity(16),
            last_closed,
            first_open,
            stale_repartitions: 0,
            event_ready_buf: Vec::new(),
            drops_reported,
        }
    }

    /// The standard stage list, in close order.
    pub fn standard_stages() -> Vec<Box<dyn TickStage>> {
        vec![
            Box::new(SeedSelectStage),
            Box::new(TermWindowStage),
            Box::new(PairCountStage),
            Box::new(ShiftScoreStage),
            Box::new(RankEmitStage),
        ]
    }

    /// Appends a custom stage behind the standard ones (runs after
    /// `rank-emit`, so it sees the tick's finished snapshot). The stage
    /// gets its own `stage.close.ns{stage=…}` latency series like the
    /// standard ones.
    pub fn push_stage(&mut self, stage: Box<dyn TickStage>) {
        self.stage_spans.push(self.state.telemetry.registry().histogram_labeled(
            "stage.close.ns",
            "stage",
            stage.name(),
        ));
        self.stages.push(stage);
    }

    /// Stage names in close order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// The shared pipeline state.
    pub fn state(&self) -> &PipelineState {
        &self.state
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &EnBlogueConfig {
        &self.state.config
    }

    /// Feeds one document (annotations counted into the open tick).
    ///
    /// Documents must arrive in non-decreasing timestamp order relative to
    /// closed ticks; a document belonging to an already-closed tick is
    /// counted into the open tick's slot (windowed counters never move
    /// backwards).
    ///
    /// With [`crate::config::SourceGuardConfig`] enabled, the document is
    /// judged first — an exact duplicate within the dedup window or a
    /// document its source's token bucket cannot cover is dropped (with
    /// counter + journal accounting) before it reaches any stage.
    pub fn process_doc(&mut self, doc: &Document) {
        if !self.admit_doc(doc) {
            return;
        }
        self.ingest_doc(doc, false);
    }

    /// Applies the source guard to one document; `true` admits. Always
    /// `true` with the guard disabled. Every feed path funnels each
    /// document through this exactly once — the guard is stateful
    /// (tokens, dedup keys), so double-judging would diverge.
    fn admit_doc(&mut self, doc: &Document) -> bool {
        if self.state.guard.is_none() {
            return true;
        }
        let tick = self.state.config.tick_spec.tick_of(doc.timestamp);
        let verdict =
            self.state.guard.as_mut().expect("guard checked above").admit(doc.source, doc.id, tick);
        match verdict {
            GuardVerdict::Admitted => true,
            GuardVerdict::Duplicate => {
                self.state.probes.dedup_drops.inc();
                false
            }
            GuardVerdict::RateCapped => {
                self.state.probes.rate_drops.inc();
                false
            }
        }
    }

    /// The shared per-document prologue of both feeding modes: assign the
    /// tick, bump counters, gather the annotation set once (tags,
    /// optionally merged with entities — the same
    /// [`enblogue_ingest::partition::annotations_of`] the partitioner
    /// uses, so both paths see byte-identical slices), then dispatch to
    /// every stage's per-doc hook — the partitioned variant when the pair
    /// observations travel separately.
    fn ingest_doc(&mut self, doc: &Document, partitioned: bool) {
        let tick = self.state.config.tick_spec.tick_of(doc.timestamp);
        self.state.docs_processed += 1;
        self.state.probes.docs.inc();
        if self.first_open.is_none() {
            self.first_open = Some(tick);
        }
        annotations_of(doc, self.state.config.use_entities, &mut self.annotation_buf);
        for stage in &mut self.stages {
            if partitioned {
                stage.on_doc_partitioned(&mut self.state, tick, doc, &self.annotation_buf);
            } else {
                stage.on_doc(&mut self.state, tick, doc, &self.annotation_buf);
            }
        }
    }

    /// The partitioning parameters batched feeders need (the pair-space
    /// slice of the engine configuration, plus the registry's live
    /// routing handle — partitioning workers snapshot it per batch and
    /// follow rebalances as they are published).
    pub fn partition_spec(&self) -> PartitionSpec {
        PartitionSpec {
            tick_spec: self.state.config.tick_spec,
            use_entities: self.state.config.use_entities,
            routing: self.state.registry.routing_handle(),
        }
    }

    /// Batched ingestion: feeds a whole document slice in one call.
    ///
    /// Semantically identical to calling [`StagePipeline::process_doc`] per
    /// document — no tick is closed, and rankings are byte-identical for
    /// any batch split. Internally this is the batch fast path: the slice
    /// is tokenized and pair-partitioned once
    /// ([`enblogue_ingest::partition::partition_docs`]) and the
    /// observations are applied to the sharded registry in one pass —
    /// shard-parallel when the configuration enables `parallel_close`.
    pub fn process_docs(&mut self, docs: &[Document]) {
        if self.state.guard.is_some() {
            // Guard verdicts must interleave with feeding in stream
            // order (each admission spends tokens and records dedup
            // keys), so the batch fast path — which partitions the pair
            // observations of *all* documents up front — cannot run:
            // it would count observations of documents the guard
            // rejects. Per-document feeding is semantically identical.
            for doc in docs {
                self.process_doc(doc);
            }
            return;
        }
        match docs {
            [] => {}
            [doc] => self.process_doc(doc),
            _ => {
                let partitioned = partition_docs(docs, &self.partition_spec());
                self.process_partitioned(docs, &partitioned);
            }
        }
    }

    /// Applies a batch whose pair observations were already partitioned by
    /// shard (the entry point of `enblogue_ingest`'s pipeline, where the
    /// partitioning ran on a worker thread).
    ///
    /// Window bookkeeping (seeds, document volume, term distributions)
    /// runs per document in stream order; the pre-bucketed pair
    /// observations are applied to the registry in one fan-out, one worker
    /// per shard when `parallel_close` is set. Equivalent to per-document
    /// feeding for any shard count and either mode: per-shard write order
    /// is exactly the sequential subsequence, and no close-phase reader
    /// runs until the tick closes.
    ///
    /// # Panics
    /// Panics if `partitioned` was built for a different document slice or
    /// shard count.
    pub fn process_partitioned(&mut self, docs: &[Document], partitioned: &PartitionedBatch) {
        /// Below this many observations a thread scope costs more than the
        /// serial apply loop it replaces; small batches stay on the caller
        /// thread. A pure execution threshold — results are identical.
        const PARALLEL_APPLY_MIN_OBSERVATIONS: usize = 512;
        if self.state.guard.is_some() {
            // The batch was partitioned before the guard could judge its
            // documents (partitioning runs on worker threads that hold no
            // guard state), so its buckets may contain observations of
            // documents about to be rejected. Discard the buckets and
            // feed per document — the guard then judges each exactly
            // once, identically to the serial path.
            for doc in docs {
                self.process_doc(doc);
            }
            return;
        }
        if partitioned.routing_epoch != self.state.registry.routing_epoch() {
            // A rebalance migrated shard ownership between partitioning
            // (on a worker thread) and application: the buckets route to
            // the wrong stores now. Re-partition under the current table.
            // This re-pays the batch's full partitioning cost (including
            // tokenization — the batch does not retain the flat
            // observation stream), but only for the handful of batches in
            // flight across a rebalance, and rebalances are cooldown-
            // spaced. The fresh batch carries the current epoch, so the
            // recursion terminates after one step (no close can
            // interleave on this thread).
            self.stale_repartitions += 1;
            let fresh = partition_docs(docs, &self.partition_spec());
            return self.process_partitioned(docs, &fresh);
        }
        assert_eq!(partitioned.docs, docs.len(), "partitioned batch does not match the slice");
        for doc in docs {
            self.ingest_doc(doc, true);
        }
        let parallel = self.state.config.parallel_close
            && partitioned.observations >= PARALLEL_APPLY_MIN_OBSERVATIONS;
        self.state.registry.ingest_partitioned(partitioned.buckets(), parallel);
    }

    /// Closes `tick` by running every stage's close phase in order and
    /// returns the tick's ranking.
    pub fn close_tick(&mut self, tick: Tick) -> RankingSnapshot {
        let now = self.state.config.tick_spec.end_of(tick);
        self.state.ticks_closed += 1;
        self.state.probes.ticks.inc();
        for (stage, span_hist) in self.stages.iter_mut().zip(self.stage_spans.iter()) {
            let _span = enblogue_telemetry::span!(span_hist);
            stage.on_close(&mut self.state, tick, now);
        }
        self.last_closed = Some(self.last_closed.map_or(tick, |last| last.max(tick)));
        let snapshot = self.state.latest.clone().expect("the rank-emit stage produces a snapshot");
        self.state.probes.pairs_tracked.set(self.state.registry.len() as i64);
        self.state.telemetry.journal().record(
            EventKind::TickClose,
            tick.0,
            self.state.registry.len() as u64,
            snapshot.ranked.len() as u64,
        );
        self.journal_drops(tick);
        snapshot
    }

    /// Journals one aggregate event per drop class whose total advanced
    /// since the last close (`a` = drops since then, `b` = total), so
    /// hostile-input damage is visible per tick without a per-document
    /// journal flood.
    fn journal_drops(&mut self, tick: Tick) {
        let totals = [
            self.state.event.as_ref().map_or(0, |b| b.late_dropped() + b.overflow_dropped()),
            self.state.guard.as_ref().map_or(0, |g| g.deduped()),
            self.state.guard.as_ref().map_or(0, |g| g.rate_capped()),
        ];
        let kinds = [EventKind::LateDrop, EventKind::DedupDrop, EventKind::RateCapDrop];
        for ((kind, total), reported) in kinds.into_iter().zip(totals).zip(&mut self.drops_reported)
        {
            if total > *reported {
                self.state.telemetry.journal().record(kind, tick.0, total - *reported, total);
                *reported = total;
            }
        }
    }

    /// Closes every tick from the first unclosed one up to and including
    /// `tick` (gap ticks keep correlation histories tick-aligned), calling
    /// `emit` per snapshot. Already-closed ticks are skipped.
    ///
    /// This is the single gap-closing implementation shared by the DAG
    /// operator (tick boundaries may jump) and the replay driver.
    pub fn close_through(&mut self, tick: Tick, mut emit: impl FnMut(RankingSnapshot)) {
        let mut t = match self.last_closed {
            Some(last) if last >= tick => return,
            Some(last) => last.next(),
            // Nothing closed yet: start where the stream started (the
            // first document's tick), so leading gap ticks are closed too.
            None => self.first_open.map_or(tick, |first| first.min(tick)),
        };
        loop {
            emit(self.close_tick(t));
            if t == tick {
                break;
            }
            t = t.next();
        }
    }

    /// Closes every tick an uninterrupted stream would have closed before
    /// feeding a document of `tick`: from the current cursor — the last
    /// closed tick, or the first *open* tick when nothing has closed yet
    /// (a pipeline fed mid-tick, or restored from a mid-tick checkpoint)
    /// — up to `tick - 1`, calling `emit` per snapshot. A no-op when the
    /// cursor is already caught up or nothing has been fed at all.
    pub fn close_gap_before(&mut self, tick: Tick, emit: impl FnMut(RankingSnapshot)) {
        if let Some(floor) = self.last_closed.or(self.first_open) {
            if tick > floor {
                self.close_through(tick.prev(), emit);
            }
        }
    }

    /// Replays a timestamp-sorted document slice, closing every tick in
    /// sequence (including empty gap ticks). Returns one snapshot per
    /// closed tick.
    ///
    /// On a pipeline that has already seen the stream's head — ticks
    /// closed, or an open tick fed mid-way; in particular one restored
    /// from a checkpoint — the replay continues from the cursor: every
    /// tick an uninterrupted run would have closed before the first tail
    /// document is closed first (including a still-open checkpoint tick),
    /// and documents at or before an already-*closed* tick are rejected
    /// (they were already counted before the checkpoint).
    pub fn run_replay(&mut self, docs: &[Document]) -> Vec<RankingSnapshot> {
        if self.state.event.is_some() {
            // Event-time mode: arrivals may be out of order; the reorder
            // buffer re-sequences them and the watermark drives closes.
            // The sortedness assertions below do not apply.
            let mut snapshots = Vec::new();
            for doc in docs {
                self.offer_doc(doc, |snapshot| snapshots.push(snapshot));
            }
            self.finish_event_stream(|snapshot| snapshots.push(snapshot));
            return snapshots;
        }
        let mut snapshots = Vec::new();
        let closed_floor = self.last_closed;
        let mut open: Option<Tick> = self.last_closed.or(self.first_open);
        let mut fed = false;
        for doc in docs {
            let tick = self.state.config.tick_spec.tick_of(doc.timestamp);
            if let Some(floor) = closed_floor {
                assert!(
                    tick > floor,
                    "run_replay tail must start after the already-closed tick {floor} (got {tick})"
                );
            }
            if let Some(current) = open {
                assert!(tick >= current, "run_replay requires timestamp-sorted documents");
                if tick > current {
                    self.close_through(tick.prev(), |snapshot| snapshots.push(snapshot));
                }
            }
            open = Some(tick);
            fed = true;
            self.process_doc(doc);
        }
        if fed {
            if let Some(current) = open {
                self.close_through(current, |snapshot| snapshots.push(snapshot));
            }
        }
        snapshots
    }

    /// Offers one *arrival* — the event-time streaming entry point.
    ///
    /// With [`crate::config::EventTimeConfig`] enabled the document goes
    /// through the reorder buffer: it is held until the arrival-driven
    /// watermark seals its tick, dropped (with counter + journal
    /// accounting) if it arrives beyond the lateness bound or the buffer
    /// cap, and fed in true event-tick order otherwise. Ticks the
    /// watermark seals are closed immediately — all of their surviving
    /// documents are fed by then, so the emitted rankings are
    /// byte-identical to replaying the same stream pre-sorted (pinned in
    /// `tests/stage_parity.rs`). `emit` receives each closed tick's
    /// snapshot.
    ///
    /// With event time disabled this degrades to the plain streaming
    /// feed: close the gap before the document's tick, then process it —
    /// so hosts can call one entry point regardless of configuration.
    pub fn offer_doc(&mut self, doc: &Document, mut emit: impl FnMut(RankingSnapshot)) {
        let Some(mut buffer) = self.state.event.take() else {
            self.feed_ordered_doc(doc, &mut emit);
            return;
        };
        match buffer.push(doc.clone()) {
            PushOutcome::Buffered => {}
            PushOutcome::Late => self.state.probes.late_drops.inc(),
            PushOutcome::Overflow => self.state.probes.overflow_drops.inc(),
        }
        let mut ready = std::mem::take(&mut self.event_ready_buf);
        buffer.drain_ready(&mut ready);
        let sealed = buffer.emitted_through();
        self.state.event = Some(buffer);
        for ordered in &ready {
            self.feed_ordered_doc(ordered, &mut emit);
        }
        ready.clear();
        self.event_ready_buf = ready;
        if let Some(sealed) = sealed {
            // Every surviving document of ticks ≤ sealed is fed (later
            // ticks are still buffered), so closing now reproduces the
            // sorted replay's state at these closes exactly.
            self.close_through(sealed, &mut emit);
        }
    }

    /// End of an event-time stream: releases everything the reorder
    /// buffer still holds (in tick order) and closes through the last
    /// tick that saw a document, emitting each snapshot. A no-op when
    /// event time is disabled or nothing was ever buffered.
    pub fn finish_event_stream(&mut self, mut emit: impl FnMut(RankingSnapshot)) {
        let Some(mut buffer) = self.state.event.take() else { return };
        let mut ready = std::mem::take(&mut self.event_ready_buf);
        buffer.flush(&mut ready);
        let through = buffer.emitted_through();
        self.state.event = Some(buffer);
        for ordered in &ready {
            self.feed_ordered_doc(ordered, &mut emit);
        }
        ready.clear();
        self.event_ready_buf = ready;
        if let Some(through) = through {
            self.close_through(through, &mut emit);
        }
    }

    /// Feeds one document of a tick-ordered stream the way `run_replay`
    /// would: close every tick before the document's, then process it
    /// (which still runs the source guard).
    fn feed_ordered_doc(&mut self, doc: &Document, emit: impl FnMut(RankingSnapshot)) {
        let tick = self.state.config.tick_spec.tick_of(doc.timestamp);
        self.close_gap_before(tick, emit);
        self.process_doc(doc);
    }

    /// Runs a raw arrival slice through the reorder buffer and returns
    /// the surviving documents in event-tick order (drop counters fire
    /// as usual); the buffer is left flushed. With event time disabled
    /// the slice passes through unchanged. This is the batched
    /// counterpart of [`offer_doc`](Self::offer_doc) for hosts that feed
    /// an ingest pipeline rather than per-document calls — the returned
    /// slice is sorted, so the batched feeders' invariants hold.
    pub fn resequence_arrivals(&mut self, docs: &[Document]) -> Vec<Document> {
        let Some(mut buffer) = self.state.event.take() else { return docs.to_vec() };
        let mut ordered = Vec::with_capacity(docs.len());
        for doc in docs {
            match buffer.push(doc.clone()) {
                PushOutcome::Buffered => {}
                PushOutcome::Late => self.state.probes.late_drops.inc(),
                PushOutcome::Overflow => self.state.probes.overflow_drops.inc(),
            }
            // Draining as the watermark advances (rather than once at the
            // end) keeps held memory at the cap, not the stream length.
            buffer.drain_ready(&mut ordered);
        }
        buffer.flush(&mut ordered);
        self.state.event = Some(buffer);
        ordered
    }

    /// The most recently closed tick — the resume cursor: a pipeline
    /// restored from a checkpoint reports the checkpoint's tick here, and
    /// tail replays continue from the next one.
    pub fn last_closed(&self) -> Option<Tick> {
        self.last_closed
    }

    /// Serializes the complete pipeline state to `path` (atomic write;
    /// see [`crate::snapshot`] for the format). Valid at any point, not
    /// just tick boundaries — open-tick observations are part of the
    /// state and travel along.
    ///
    /// # Errors
    /// Surfaces filesystem failures as
    /// [`EnBlogueError::SnapshotIo`]; the pipeline is untouched either
    /// way (checkpointing is read-only on engine state).
    pub fn checkpoint_to(&mut self, path: &Path) -> Result<SnapshotStats, EnBlogueError> {
        let started = Instant::now();
        let payload = self.state.encode_snapshot(self.last_closed, self.first_open);
        let bytes = snapshot::write_snapshot_file(path, &payload)?;
        self.state.snapshots_taken += 1;
        self.state.snapshot_bytes += bytes;
        let write_micros = started.elapsed().as_micros() as u64;
        self.state.probes.snapshot_write.record(duration_ns(started));
        self.state.telemetry.journal().record(
            EventKind::CheckpointWrite,
            self.last_closed.map_or(0, |t| t.0),
            bytes,
            write_micros,
        );
        Ok(SnapshotStats {
            path: path.to_path_buf(),
            bytes,
            write_micros,
            tracked_pairs: self.state.registry.len(),
            tick: self.last_closed,
        })
    }

    /// Restores a pipeline from a snapshot file, verifying the frame
    /// (magic, version, length, checksum) and that `config` fingerprints
    /// to the checkpointing configuration. The restored pipeline
    /// continues exactly where the checkpoint left off: feed the tail of
    /// the stream (documents after the checkpoint tick) and rankings are
    /// byte-identical to an uninterrupted run.
    ///
    /// # Errors
    /// [`EnBlogueError::SnapshotIo`] for filesystem failures,
    /// [`EnBlogueError::SnapshotCorrupt`] /
    /// [`EnBlogueError::SnapshotVersionMismatch`] for malformed files,
    /// [`EnBlogueError::SnapshotConfigMismatch`] when `config` differs
    /// from the checkpointing configuration, and configuration validation
    /// errors as usual.
    pub fn resume_from(config: EnBlogueConfig, path: &Path) -> Result<Self, EnBlogueError> {
        let started = Instant::now();
        let payload = snapshot::read_snapshot_payload(path)?;
        let mut r = SnapReader::new(&payload);
        let (mut state, last_closed, first_open) = PipelineState::decode_snapshot(config, &mut r)?;
        r.finish()?;
        state.restores = 1;
        let pipeline = Self::assemble(state, last_closed, first_open);
        let ns = duration_ns(started);
        pipeline.state.probes.restore.record(ns);
        pipeline.state.telemetry.journal().record(
            EventKind::Restore,
            last_closed.map_or(0, |t| t.0),
            ns / 1_000,
            0,
        );
        Ok(pipeline)
    }

    /// The pipeline's observability hub: metric registry, event journal
    /// and exporters (see [`enblogue_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.state.telemetry
    }

    /// The most recent ranking, if any tick has been closed.
    pub fn latest_snapshot(&self) -> Option<&RankingSnapshot> {
        self.state.latest.as_ref()
    }

    /// The seeds selected at the last tick close, sorted.
    pub fn current_seeds(&self) -> Vec<TagId> {
        let mut seeds: Vec<TagId> = self.state.seeds.iter().copied().collect();
        seeds.sort_unstable();
        seeds
    }

    /// Whether `tag` is currently a seed.
    pub fn is_seed(&self, tag: TagId) -> bool {
        self.state.seeds.contains(&tag)
    }

    /// Rich info on a tracked pair.
    pub fn pair_info(&self, pair: TagPair) -> Option<TrackedPairInfo> {
        let tick = self.state.latest.as_ref().map_or(Tick::ZERO, |s| s.tick);
        let now = self.state.latest.as_ref().map_or(Timestamp::ZERO, |s| s.time);
        self.state.registry.info(pair, tick, now)
    }

    /// The correlation history of a tracked pair (oldest → newest).
    pub fn pair_history(&self, pair: TagPair) -> Option<Vec<f64>> {
        self.state.registry.history_of(pair)
    }

    /// The pipeline's in-place [`crate::query::QueryView`]: the unified
    /// read surface over the accessors above, shared with the serving
    /// tier's published views. `interner` is needed for tag names and
    /// keyword personalization — pass the one the documents were tagged
    /// with.
    pub fn query_view(&self, interner: TagInterner) -> crate::query::EngineQuery<'_> {
        crate::query::EngineQuery::new(self, interner)
    }

    /// Run-time counters.
    pub fn metrics(&self) -> EngineMetrics {
        self.state.metrics()
    }

    /// Batches re-partitioned because a rebalance superseded their
    /// routing epoch while they were in flight (see
    /// [`StagePipeline::process_partitioned`]). Timing-dependent; for
    /// observability, not for replay comparison.
    pub fn stale_repartitions(&self) -> u64 {
        self.stale_repartitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::{TickSpec, Timestamp};

    fn config(shards: usize, parallel: bool) -> EnBlogueConfig {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::hourly())
            .window_ticks(6)
            .seed_count(8)
            .min_seed_count(2)
            .top_k(5)
            .min_pair_support(1)
            .shards(shards)
            .parallel_close(parallel)
            .build()
            .unwrap()
    }

    fn doc(id: u64, hour: u64, tags: &[u32]) -> Document {
        Document::builder(id, Timestamp::from_hours(hour))
            .tags(tags.iter().map(|&t| TagId(t)))
            .build()
    }

    fn burst_workload() -> Vec<Document> {
        let mut docs = Vec::new();
        let mut id = 0;
        for hour in 0..12u64 {
            for _ in 0..5 {
                for set in [&[1u32][..], &[2], &[3]] {
                    id += 1;
                    docs.push(doc(id, hour, set));
                }
                if hour >= 9 {
                    id += 1;
                    docs.push(doc(id, hour, &[1, 2]));
                }
            }
        }
        docs
    }

    #[test]
    fn standard_pipeline_names_the_five_phases() {
        let pipeline = StagePipeline::new(config(1, false));
        assert_eq!(
            pipeline.stage_names(),
            vec!["seed-select", "term-window", "pair-count", "shift-score", "rank-emit"]
        );
    }

    #[test]
    fn checkpoint_stage_mounts_only_when_configured() {
        let mut cfg = config(1, false);
        cfg.snapshot = crate::config::SnapshotConfig {
            interval_ticks: 4,
            directory: std::env::temp_dir()
                .join(format!("enblogue-stage-mount-{}", std::process::id()))
                .to_str()
                .unwrap()
                .to_owned(),
            retention: 1,
        };
        let pipeline = StagePipeline::new(cfg);
        assert_eq!(
            pipeline.stage_names(),
            vec![
                "seed-select",
                "term-window",
                "pair-count",
                "shift-score",
                "rank-emit",
                "checkpoint"
            ]
        );
    }

    #[test]
    fn failed_checkpoint_writes_are_counted_not_raised() {
        let mut cfg = config(1, false);
        // A directory that cannot be created (parent is a file).
        cfg.snapshot = crate::config::SnapshotConfig {
            interval_ticks: 1,
            directory: "/dev/null/not-a-directory".into(),
            retention: 1,
        };
        let mut pipeline = StagePipeline::new(cfg);
        pipeline.process_doc(&doc(1, 0, &[1, 2]));
        pipeline.close_tick(Tick(0));
        let metrics = pipeline.metrics();
        assert_eq!(metrics.snapshot_failures, 1, "the write failed");
        assert_eq!(metrics.snapshots_taken, 0);
        assert_eq!(metrics.ticks_closed, 1, "the stream keeps running");
    }

    #[test]
    fn pipeline_detects_the_emergent_pair() {
        let mut pipeline = StagePipeline::new(config(1, false));
        let snapshots = pipeline.run_replay(&burst_workload());
        assert_eq!(snapshots.len(), 12);
        let last = snapshots.last().unwrap();
        assert_eq!(last.ranked[0].0, TagPair::new(TagId(1), TagId(2)));
        assert!(pipeline.is_seed(TagId(1)));
        assert_eq!(pipeline.metrics().ticks_closed, 12);
    }

    #[test]
    fn shard_count_and_parallelism_do_not_change_results() {
        let docs = burst_workload();
        let baseline = StagePipeline::new(config(1, false)).run_replay(&docs);
        for (shards, parallel) in [(4, false), (16, false), (4, true), (16, true)] {
            let snapshots = StagePipeline::new(config(shards, parallel)).run_replay(&docs);
            assert_eq!(snapshots, baseline, "shards={shards} parallel={parallel}");
        }
    }

    #[test]
    fn process_docs_matches_per_doc_feeding() {
        let docs = burst_workload();
        // Batched: feed each tick's slice at once.
        let mut batched = StagePipeline::new(config(4, false));
        let mut start = 0;
        let mut out_batched = Vec::new();
        for hour in 0..12u64 {
            let end = docs
                .iter()
                .position(|d| d.timestamp >= Timestamp::from_hours(hour + 1))
                .unwrap_or(docs.len());
            batched.process_docs(&docs[start..end]);
            out_batched.push(batched.close_tick(Tick(hour)));
            start = end;
        }
        let mut single = StagePipeline::new(config(4, false));
        let out_single = single.run_replay(&docs);
        assert_eq!(out_batched, out_single);
        assert_eq!(batched.metrics(), single.metrics());
    }

    #[test]
    fn close_through_fills_gaps_once() {
        let mut pipeline = StagePipeline::new(config(1, false));
        pipeline.process_doc(&doc(1, 0, &[1, 2]));
        let mut ticks = Vec::new();
        pipeline.close_through(Tick(3), |s| ticks.push(s.tick));
        assert_eq!(ticks, vec![Tick(0), Tick(1), Tick(2), Tick(3)]);
        // Re-closing through an older tick is a no-op.
        pipeline.close_through(Tick(2), |_| panic!("tick 2 already closed"));
        assert_eq!(pipeline.metrics().ticks_closed, 4);
    }

    #[test]
    fn custom_stages_see_the_emitted_snapshot() {
        struct SnapshotProbe {
            seen: std::sync::Arc<std::sync::Mutex<Vec<Tick>>>,
        }
        impl TickStage for SnapshotProbe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn on_close(&mut self, state: &mut PipelineState, tick: Tick, _now: Timestamp) {
                let snapshot = state.latest_snapshot().expect("runs after rank-emit");
                assert_eq!(snapshot.tick, tick);
                self.seen.lock().unwrap().push(tick);
            }
        }
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut pipeline = StagePipeline::new(config(1, false));
        pipeline.push_stage(Box::new(SnapshotProbe { seen: std::sync::Arc::clone(&seen) }));
        assert_eq!(pipeline.stage_names().len(), 6);
        pipeline.process_doc(&doc(1, 0, &[1, 2]));
        pipeline.close_tick(Tick(0));
        pipeline.close_tick(Tick(1));
        assert_eq!(*seen.lock().unwrap(), vec![Tick(0), Tick(1)]);
    }
}
