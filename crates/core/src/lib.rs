//! The EnBlogue engine: emergent topic detection in Web 2.0 streams.
//!
//! This crate implements the paper's three-stage framework (§3) on top of
//! the substrates in the sibling crates:
//!
//! 1. **Seed tag selection** ([`seeds`]) — popular (or volatile) tags
//!    chosen by sliding-window statistics; candidate topics are tag pairs
//!    containing at least one seed.
//! 2. **Correlation tracking** ([`pairs`], [`termwin`]) — windowed
//!    co-occurrence counts per candidate pair, mapped to a correlation
//!    value by a set-overlap measure or the relative-entropy variant.
//! 3. **Shift detection** ([`pairs`], `enblogue_stats::shift`) — one-step
//!    prediction errors scored through the decayed-max rule with the
//!    paper's ≈2-day half-life; topics ranked, top-k reported.
//!
//! All tick semantics live in **one** place — the [`stages`] module's
//! [`stages::TickStage`] pipeline — and every execution surface is a thin
//! adapter over it:
//!
//! * [`stages`] — the five-phase [`stages::StagePipeline`] with
//!   hash-sharded pair state ([`pairs::ShardedPairRegistry`]) and
//!   optional shard-parallel tick close,
//! * [`engine::EnBlogueEngine`] — the stand-alone engine (feed documents,
//!   close ticks, collect [`RankingSnapshot`]s),
//! * [`ops`] — the pipeline and entity tagger wrapped as stream operators,
//! * [`pipeline`] — full query plans on the push-based DAG with multi-plan
//!   sharing (§4.1),
//! * [`personalization`] — per-user continuous keyword queries and category
//!   preferences re-ranking the topics (§5, Show Case 3),
//! * [`query`] — the unified [`query::QueryView`] read surface shared by
//!   the in-place engine view and the concurrent serving tier,
//! * [`notify`] — the push broker substituting the Ajax Push Engine
//!   front-end (§4.2).
//!
//! # Quickstart
//!
//! ```
//! use enblogue_core::config::EnBlogueConfig;
//! use enblogue_core::engine::EnBlogueEngine;
//! use enblogue_types::{Document, TagInterner, TagKind, TickSpec, Timestamp};
//!
//! let interner = TagInterner::new();
//! let volcano = interner.intern("volcano", TagKind::Hashtag);
//! let iceland = interner.intern("iceland", TagKind::Hashtag);
//!
//! let config = EnBlogueConfig::builder()
//!     .tick_spec(TickSpec::hourly())
//!     .window_ticks(6)
//!     .seed_count(10)
//!     .top_k(5)
//!     .build()
//!     .unwrap();
//! let mut engine = EnBlogueEngine::new(config);
//!
//! // Feed a stream: a few hours of background, then a correlated burst.
//! let mut id = 0;
//! for hour in 0..12u64 {
//!     for _ in 0..20 {
//!         id += 1;
//!         let mut doc = Document::builder(id, Timestamp::from_hours(hour)).tag(volcano).build();
//!         if hour >= 9 {
//!             doc.tags.push(iceland);
//!             doc.normalize();
//!         }
//!         engine.process_doc(&doc);
//!     }
//!     engine.close_tick(enblogue_types::Tick(hour));
//! }
//! let ranking = engine.pipeline().latest_snapshot().unwrap();
//! assert!(!ranking.ranked.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod ingest;
pub mod notify;
pub mod ops;
pub mod pairs;
pub mod personalization;
pub mod pipeline;
pub mod query;
pub mod rankdiff;
pub mod seeds;
pub mod slab;
pub mod snapshot;
pub mod stages;
pub mod termwin;

pub use config::{
    EnBlogueConfig, EventTimeConfig, MeasureKind, SeedStrategy, SnapshotConfig, SourceGuardConfig,
};
pub use enblogue_types::RankingSnapshot;
pub use engine::EnBlogueEngine;
pub use ingest::ReplayIngest;
pub use notify::{PushBroker, PushSubscription, RankingUpdate};
pub use pairs::{RebalanceConfig, RegistryStats, ScoringMode, ShardedPairRegistry};
pub use personalization::{PersonalizedRanking, UserProfile};
pub use query::{EngineQuery, PublishDetail, QueryView, ViewData};
pub use rankdiff::{diff as ranking_diff, kendall_tau, RankChange, RankingHistory};
pub use snapshot::{latest_checkpoint, list_checkpoints, SnapshotStats, SNAPSHOT_VERSION};
pub use stages::{EngineMetrics, StagePipeline, TickStage};
