//! Full query plans on the push-based DAG, with multi-plan sharing.
//!
//! §4.1: "The system allows executing multiple query plans in parallel,
//! where overlapping parts, like data sources, sketching operators, entity
//! tagging, and statistics operators are shared for efficiency. It hence
//! allows us to compare emergent topic rankings obtained from different
//! parameter settings in real-time."
//!
//! A [`PipelineBuilder`] assembles: one replay source → (optional, shared)
//! entity tagging → one [`EngineOp`] sink per engine configuration.
//! Experiment P2 builds the same pipeline with sharing disabled to measure
//! the saved work.

use crate::config::EnBlogueConfig;
use crate::notify::PushBroker;
use crate::ops::{EngineOp, EntityTagOp, SnapshotHandle};
use enblogue_entity::tagger::EntityTagger;
use enblogue_stream::exec::{run_graph, run_graph_threaded, ExecutionStats};
use enblogue_stream::graph::Graph;
use enblogue_stream::source::ReplaySource;
use enblogue_types::{Document, EnBlogueError, TagInterner, TickSpec};
use std::sync::Arc;

/// Builder for a complete EnBlogue query-plan graph.
pub struct PipelineBuilder {
    docs: Vec<Document>,
    tick_spec: TickSpec,
    interner: TagInterner,
    tagger: Option<Arc<EntityTagger>>,
    engines: Vec<(String, EnBlogueConfig, Option<PushBroker>)>,
    share_plans: bool,
}

impl PipelineBuilder {
    /// A pipeline replaying `docs` under `tick_spec`, interning into
    /// `interner` (must be the same interner the workload used).
    pub fn new(docs: Vec<Document>, tick_spec: TickSpec, interner: TagInterner) -> Self {
        PipelineBuilder {
            docs,
            tick_spec,
            interner,
            tagger: None,
            engines: Vec::new(),
            share_plans: true,
        }
    }

    /// Inserts a shared entity-tagging stage before the engines.
    #[must_use]
    pub fn with_entity_tagging(mut self, tagger: Arc<EntityTagger>) -> Self {
        self.tagger = Some(tagger);
        self
    }

    /// Adds one engine (query plan) with its own configuration.
    #[must_use]
    pub fn with_engine(mut self, name: impl Into<String>, config: EnBlogueConfig) -> Self {
        self.engines.push((name.into(), config, None));
        self
    }

    /// Adds an engine whose snapshots are also published to `broker`.
    #[must_use]
    pub fn with_engine_and_broker(
        mut self,
        name: impl Into<String>,
        config: EnBlogueConfig,
        broker: PushBroker,
    ) -> Self {
        self.engines.push((name.into(), config, Some(broker)));
        self
    }

    /// Disables structural plan sharing (the P2 ablation baseline: every
    /// plan gets a private copy of each stage).
    #[must_use]
    pub fn without_sharing(mut self) -> Self {
        self.share_plans = false;
        self
    }

    /// Builds the graph; returns it plus one snapshot handle per engine,
    /// in registration order.
    ///
    /// # Errors
    /// Fails if no engine was registered or a configuration is invalid.
    pub fn build(self) -> Result<(Graph, Vec<SnapshotHandle>), EnBlogueError> {
        if self.engines.is_empty() {
            return Err(EnBlogueError::PlanError("a pipeline needs at least one engine".into()));
        }
        for (_, config, _) in &self.engines {
            config.validate()?;
        }
        let mut graph = Graph::new(ReplaySource::new(self.docs, self.tick_spec));
        let mut handles = Vec::with_capacity(self.engines.len());
        for (name, config, broker) in self.engines {
            // Each plan is source → [entity tagging] → engine; with
            // sharing on, equal prefixes collapse into one node.
            let tag_node = self.tagger.as_ref().map(|tagger| {
                let op = EntityTagOp::new(Arc::clone(tagger), self.interner.clone());
                if self.share_plans {
                    graph.attach(None, op)
                } else {
                    graph.attach_unshared(None, op)
                }
            });
            // The engine sink is a thin adapter over the shared stage
            // pipeline — the same implementation the stand-alone
            // `EnBlogueEngine` runs.
            let mut engine_op = EngineOp::from_config(name, config);
            if let Some(broker) = broker {
                engine_op = engine_op.with_broker(broker);
            }
            handles.push(engine_op.handle());
            // Engine signatures are unique, so attach() never merges them.
            graph.attach(tag_node, engine_op);
        }
        Ok((graph, handles))
    }

    /// Builds and runs the pipeline on the synchronous executor.
    pub fn run(self) -> Result<(ExecutionStats, Vec<SnapshotHandle>), EnBlogueError> {
        let (mut graph, handles) = self.build()?;
        let stats = run_graph(&mut graph)?;
        Ok((stats, handles))
    }

    /// Builds and runs the pipeline on the threaded executor (one worker
    /// thread per operator; within each engine sink, tick close can
    /// additionally fan out shard-parallel when its configuration sets
    /// `shards` and `parallel_close`).
    pub fn run_threaded(
        self,
        channel_capacity: usize,
    ) -> Result<(ExecutionStats, Vec<SnapshotHandle>), EnBlogueError> {
        let (graph, handles) = self.build()?;
        let stats = run_graph_threaded(graph, channel_capacity)?;
        Ok((stats, handles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_entity::gazetteer::GazetteerBuilder;
    use enblogue_types::{TagKind, Timestamp};

    fn workload(interner: &TagInterner) -> Vec<Document> {
        let a = interner.intern("alpha", TagKind::Hashtag);
        let b = interner.intern("beta", TagKind::Hashtag);
        let mut docs = Vec::new();
        let mut id = 0;
        for hour in 0..10u64 {
            for _ in 0..5 {
                id += 1;
                let tags = if hour >= 8 { vec![a, b] } else { vec![a] };
                docs.push(
                    Document::builder(id, Timestamp::from_hours(hour))
                        .tags(tags)
                        .text("nothing to see")
                        .build(),
                );
            }
        }
        docs
    }

    fn config() -> EnBlogueConfig {
        EnBlogueConfig::builder()
            .window_ticks(4)
            .seed_count(4)
            .min_seed_count(1)
            .top_k(3)
            .build()
            .unwrap()
    }

    fn tagger() -> Arc<EntityTagger> {
        let mut b = GazetteerBuilder::default();
        b.add_title("nothing");
        Arc::new(EntityTagger::new(Arc::new(b.build())))
    }

    #[test]
    fn single_engine_pipeline_produces_snapshots() {
        let interner = TagInterner::new();
        let docs = workload(&interner);
        let (stats, handles) = PipelineBuilder::new(docs, TickSpec::hourly(), interner)
            .with_engine("e1", config())
            .run()
            .unwrap();
        assert_eq!(stats.source_docs, 50);
        let snaps = handles[0].lock().unwrap();
        assert_eq!(snaps.len(), 10, "one snapshot per tick");
        assert!(!snaps[9].ranked.is_empty(), "the correlated pair must emerge");
    }

    #[test]
    fn multi_plan_sharing_dedups_the_tagger() {
        let interner = TagInterner::new();
        let docs = workload(&interner);
        let shared_tagger = tagger();
        let (graph, _handles) =
            PipelineBuilder::new(docs.clone(), TickSpec::hourly(), interner.clone())
                .with_entity_tagging(Arc::clone(&shared_tagger))
                .with_engine("e1", config())
                .with_engine("e2", config())
                .build()
                .unwrap();
        assert_eq!(graph.node_count(), 3, "1 shared tagger + 2 engines");
        assert_eq!(graph.shared_hits(), 1);

        let (graph, _handles) = PipelineBuilder::new(docs, TickSpec::hourly(), interner)
            .with_entity_tagging(shared_tagger)
            .with_engine("e1", config())
            .with_engine("e2", config())
            .without_sharing()
            .build()
            .unwrap();
        assert_eq!(graph.node_count(), 4, "2 taggers + 2 engines without sharing");
    }

    #[test]
    fn shared_and_unshared_produce_identical_rankings() {
        let interner = TagInterner::new();
        let docs = workload(&interner);
        let run = |share: bool| {
            let builder = PipelineBuilder::new(docs.clone(), TickSpec::hourly(), interner.clone())
                .with_entity_tagging(tagger())
                .with_engine("e1", config())
                .with_engine("e2", config());
            let builder = if share { builder } else { builder.without_sharing() };
            let (_, handles) = builder.run().unwrap();
            let out: Vec<Vec<enblogue_types::RankingSnapshot>> =
                handles.iter().map(|h| h.lock().unwrap().clone()).collect();
            out
        };
        assert_eq!(run(true), run(false), "sharing must be a pure optimisation");
    }

    #[test]
    fn sharing_reduces_total_work() {
        let interner = TagInterner::new();
        let docs = workload(&interner);
        let measure = |share: bool| {
            let builder = PipelineBuilder::new(docs.clone(), TickSpec::hourly(), interner.clone())
                .with_entity_tagging(tagger())
                .with_engine("e1", config())
                .with_engine("e2", config())
                .with_engine("e3", config());
            let builder = if share { builder } else { builder.without_sharing() };
            let (stats, _) = builder.run().unwrap();
            stats.total_processed()
        };
        let shared = measure(true);
        let unshared = measure(false);
        assert!(shared < unshared, "sharing must save work: {shared} !< {unshared}");
    }

    #[test]
    fn empty_pipeline_is_rejected() {
        let interner = TagInterner::new();
        let err = PipelineBuilder::new(vec![], TickSpec::hourly(), interner).build().unwrap_err();
        assert!(err.to_string().contains("at least one engine"));
    }

    #[test]
    fn threaded_executor_matches_sync_snapshots() {
        let interner = TagInterner::new();
        let docs = workload(&interner);
        let sync_out = {
            let (_, handles) =
                PipelineBuilder::new(docs.clone(), TickSpec::hourly(), interner.clone())
                    .with_engine("e1", config())
                    .run()
                    .unwrap();
            let out = handles[0].lock().unwrap().clone();
            out
        };
        let threaded_out = {
            let (_, handles) = PipelineBuilder::new(docs, TickSpec::hourly(), interner)
                .with_engine("e1", config())
                .run_threaded(64)
                .unwrap();
            let out = handles[0].lock().unwrap().clone();
            out
        };
        assert_eq!(sync_out, threaded_out, "executor choice must not change rankings");
    }

    #[test]
    fn sharded_plans_match_unsharded_plans() {
        let interner = TagInterner::new();
        let docs = workload(&interner);
        let run = |shards: usize, parallel: bool| {
            let cfg = EnBlogueConfig::builder()
                .window_ticks(4)
                .seed_count(4)
                .min_seed_count(1)
                .top_k(3)
                .shards(shards)
                .parallel_close(parallel)
                .build()
                .unwrap();
            let (_, handles) =
                PipelineBuilder::new(docs.clone(), TickSpec::hourly(), interner.clone())
                    .with_engine("e1", cfg)
                    .run()
                    .unwrap();
            let out = handles[0].lock().unwrap().clone();
            out
        };
        let baseline = run(1, false);
        assert_eq!(run(4, false), baseline);
        assert_eq!(run(16, true), baseline);
    }
}
