//! Slab-resident storage for tracked-pair state.
//!
//! The per-tick shift-scoring loop is the engine's steady-state hot path:
//! at the `max_tracked_pairs` cap it touches every tracked pair every
//! tick. A map-of-structs layout (`FxHashMap<u64, PairState>` with one
//! heap-allocated history ring per pair) makes that loop pay a hash probe
//! plus two pointer chases per pair, re-collect and re-sort all keys every
//! close, and copy each history into a scratch `Vec` before scoring.
//!
//! [`PairSlab`] replaces it with a struct-of-arrays slab: packed keys,
//! decayed scores and support ticks live in parallel dense vectors, and
//! **all** correlation histories live in one contiguous
//! `history_len`-strided `f64` arena of per-pair rings. The close loop
//! walks slots linearly and hands the scorer its ring segments in place
//! ([`enblogue_stats::predict::SeriesView`]); the key→slot hash map is
//! consulted only on ingest-side operations (discovery, point lookups,
//! migration).
//!
//! Deterministic iteration order is maintained *incrementally*: a sorted
//! view of the live slots (ascending key) is repaired only when membership
//! changed — inserts are batch-merged, removals filtered — instead of
//! re-collecting and re-sorting every key every tick. All repair work
//! reuses retained buffers, so a steady-state tick close performs no heap
//! allocation (pinned by `tests/close_allocs.rs` with a counting
//! allocator).

use enblogue_types::{FxHashMap, Tick};
use enblogue_window::{DecayValue, RingBuffer};

/// Detached per-pair tracked state — the transfer representation used by
/// shard migration and snapshot restore (the resident representation is
/// the slab's column vectors).
pub struct PairState {
    /// Correlation values of past ticks (oldest → newest), the predictor's
    /// input window.
    pub history: RingBuffer<f64>,
    /// The decayed-max shift score (§3(iii)).
    pub score: DecayValue,
    /// Last tick in which the pair had window support (for eviction).
    pub last_support: Tick,
    /// Tick at which tracking started.
    pub since: Tick,
}

/// Struct-of-arrays slab of tracked-pair state with an arena-resident
/// history ring per slot (see the module docs).
///
/// Slots are recycled through a free list; a slot freed since the last
/// [`PairSlab::refresh_sorted`] stays quarantined until the sorted view
/// has dropped it, so a reused slot can never appear there twice.
pub struct PairSlab {
    history_len: usize,
    /// Key → slot; consulted on ingest and point lookups only.
    index: FxHashMap<u64, u32>,
    /// Slot → packed key (stale for dead slots).
    keys: Vec<u64>,
    /// Slot liveness (dead slots are free-listed or in limbo).
    live: Vec<bool>,
    /// Slot → decayed-max score.
    score: Vec<DecayValue>,
    /// Slot → last supported tick.
    last_support: Vec<Tick>,
    /// Slot → tracking start tick.
    since: Vec<Tick>,
    /// The history arena: slot `s`'s ring occupies
    /// `s*history_len ..= s*history_len + history_len-1`.
    hist: Vec<f64>,
    /// Slot → ring head (index of the oldest value once full; 0 while
    /// filling).
    hist_head: Vec<u32>,
    /// Slot → number of history values (≤ `history_len`).
    hist_count: Vec<u32>,
    /// Recyclable slots.
    free: Vec<u32>,
    /// Slots freed since the last refresh — not yet recyclable (they may
    /// still sit in the sorted view).
    limbo: Vec<u32>,
    /// Live slots in ascending key order; complete once repaired.
    sorted: Vec<u32>,
    /// Slots inserted since the last refresh (not yet in `sorted`).
    pending: Vec<u32>,
    /// Whether `sorted` still contains dead slots.
    stale: bool,
    /// Capacity-growth events in close-path buffers (see
    /// [`crate::pairs::RegistryStats::close_allocs`]).
    close_allocs: u64,
}

impl PairSlab {
    /// An empty slab whose history rings hold `history_len` values.
    ///
    /// # Panics
    /// Panics if `history_len == 0`.
    pub fn new(history_len: usize) -> Self {
        assert!(history_len > 0, "history must span at least one tick");
        PairSlab {
            history_len,
            index: FxHashMap::default(),
            keys: Vec::new(),
            live: Vec::new(),
            score: Vec::new(),
            last_support: Vec::new(),
            since: Vec::new(),
            hist: Vec::new(),
            hist_head: Vec::new(),
            hist_count: Vec::new(),
            free: Vec::new(),
            limbo: Vec::new(),
            sorted: Vec::new(),
            pending: Vec::new(),
            stale: false,
            close_allocs: 0,
        }
    }

    /// Number of live pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no pair is tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The history window length.
    #[inline]
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// The slot of `key`, if tracked.
    #[inline]
    pub fn slot_of(&self, key: u64) -> Option<usize> {
        self.index.get(&key).map(|&slot| slot as usize)
    }

    /// Whether `key` is tracked.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// The packed key of `slot`.
    #[inline]
    pub fn key_at(&self, slot: usize) -> u64 {
        debug_assert!(self.live[slot]);
        self.keys[slot]
    }

    /// Allocates a slot for `key` (blank history), registering it in the
    /// index and the pending-insert queue. The caller fills the columns.
    fn alloc_slot(&mut self, key: u64) -> usize {
        let slot = match self.free.pop() {
            Some(slot) => {
                let slot = slot as usize;
                self.keys[slot] = key;
                self.live[slot] = true;
                self.hist_head[slot] = 0;
                self.hist_count[slot] = 0;
                slot
            }
            None => {
                let slot = self.keys.len();
                self.keys.push(key);
                self.live.push(true);
                self.score.push(DecayValue::new(1));
                self.last_support.push(Tick::ZERO);
                self.since.push(Tick::ZERO);
                self.hist.resize(self.hist.len() + self.history_len, 0.0);
                self.hist_head.push(0);
                self.hist_count.push(0);
                slot
            }
        };
        self.index.insert(key, slot as u32);
        self.pending.push(slot as u32);
        slot
    }

    /// Starts tracking `key` with a zero score, `backfill_zeros` leading
    /// 0.0 history values (capped at `history_len - 1`) and both tick
    /// columns set to `tick`. Returns `false` (no change) if already
    /// tracked.
    pub fn insert_fresh(
        &mut self,
        key: u64,
        tick: Tick,
        backfill_zeros: usize,
        half_life_ms: u64,
    ) -> bool {
        if self.index.contains_key(&key) {
            return false;
        }
        let slot = self.alloc_slot(key);
        let zeros = backfill_zeros.min(self.history_len - 1);
        let base = slot * self.history_len;
        self.hist[base..base + zeros].fill(0.0);
        self.hist_count[slot] = zeros as u32;
        self.score[slot] = DecayValue::new(half_life_ms);
        self.last_support[slot] = tick;
        self.since[slot] = tick;
        true
    }

    /// Inserts a detached [`PairState`] (migration receiver / snapshot
    /// restore). Returns `false` (no change) if `key` is already tracked.
    ///
    /// # Panics
    /// Panics if the state's history exceeds `history_len`.
    pub fn insert_state(&mut self, key: u64, state: PairState) -> bool {
        if self.index.contains_key(&key) {
            return false;
        }
        assert!(state.history.len() <= self.history_len, "history exceeds the slab window");
        let slot = self.alloc_slot(key);
        let base = slot * self.history_len;
        for (offset, &value) in state.history.iter().enumerate() {
            self.hist[base + offset] = value;
        }
        self.hist_count[slot] = state.history.len() as u32;
        self.score[slot] = state.score;
        self.last_support[slot] = state.last_support;
        self.since[slot] = state.since;
        true
    }

    /// Stops tracking the pair at `slot` (the slot is quarantined until
    /// the next sorted-view refresh).
    pub fn remove_slot(&mut self, slot: usize) {
        debug_assert!(self.live[slot], "removing a dead slot");
        self.index.remove(&self.keys[slot]);
        self.live[slot] = false;
        self.limbo.push(slot as u32);
        self.stale = true;
    }

    /// Stops tracking `key`. Returns whether it was tracked.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.slot_of(key) {
            Some(slot) => {
                self.remove_slot(slot);
                true
            }
            None => false,
        }
    }

    /// Removes `key` and returns its detached state (migration donor).
    pub fn extract(&mut self, key: u64) -> Option<PairState> {
        let slot = self.slot_of(key)?;
        let mut history = RingBuffer::new(self.history_len);
        let (older, newer) = self.history_parts(slot);
        for &value in older.iter().chain(newer) {
            history.push(value);
        }
        let state = PairState {
            history,
            score: self.score[slot],
            last_support: self.last_support[slot],
            since: self.since[slot],
        };
        self.remove_slot(slot);
        Some(state)
    }

    /// The history ring of `slot` as `(older, newer)` contiguous runs,
    /// jointly oldest → newest — read in place by the scorer.
    #[inline]
    pub fn history_parts(&self, slot: usize) -> (&[f64], &[f64]) {
        let base = slot * self.history_len;
        let head = self.hist_head[slot] as usize;
        let count = self.hist_count[slot] as usize;
        if count < self.history_len {
            // A ring only starts wrapping once full, so a filling ring is
            // contiguous from the base.
            debug_assert_eq!(head, 0);
            (&self.hist[base..base + count], &[])
        } else {
            (&self.hist[base + head..base + count], &self.hist[base..base + head])
        }
    }

    /// Number of values currently in `slot`'s history ring (saturates at
    /// the configured history length once the ring wraps). The batched
    /// close groups slots into equal-length tiles by this.
    #[inline]
    pub fn history_count(&self, slot: usize) -> usize {
        self.hist_count[slot] as usize
    }

    /// Appends `value` to `slot`'s history, evicting the oldest value once
    /// the ring is full.
    #[inline]
    pub fn push_history(&mut self, slot: usize, value: f64) {
        let base = slot * self.history_len;
        let count = self.hist_count[slot] as usize;
        if count < self.history_len {
            self.hist[base + count] = value;
            self.hist_count[slot] = (count + 1) as u32;
        } else {
            let head = self.hist_head[slot] as usize;
            self.hist[base + head] = value;
            self.hist_head[slot] = ((head + 1) % self.history_len) as u32;
        }
    }

    /// The newest history value of `slot`.
    pub fn newest_history(&self, slot: usize) -> Option<f64> {
        let (older, newer) = self.history_parts(slot);
        newer.last().or_else(|| older.last()).copied()
    }

    /// The decayed-max score column of `slot`.
    #[inline]
    pub fn score_at(&self, slot: usize) -> &DecayValue {
        &self.score[slot]
    }

    /// Mutable access to `slot`'s score.
    #[inline]
    pub fn score_mut(&mut self, slot: usize) -> &mut DecayValue {
        &mut self.score[slot]
    }

    /// The last supported tick of `slot`.
    #[inline]
    pub fn last_support_at(&self, slot: usize) -> Tick {
        self.last_support[slot]
    }

    /// Marks `slot` as supported in `tick`.
    #[inline]
    pub fn set_last_support(&mut self, slot: usize, tick: Tick) {
        self.last_support[slot] = tick;
    }

    /// The tracking start tick of `slot`.
    #[inline]
    pub fn since_at(&self, slot: usize) -> Tick {
        self.since[slot]
    }

    /// Iterates the live slots in slot order (no key order guarantee —
    /// for order-independent passes like ranking and cap scoring).
    pub fn live_slots(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.keys.len()).filter(move |&slot| self.live[slot])
    }

    /// Upper bound over slot indices (for manual walks).
    #[inline]
    pub fn slot_bound(&self) -> usize {
        self.keys.len()
    }

    /// Whether `slot` is live.
    #[inline]
    pub fn is_live(&self, slot: usize) -> bool {
        self.live[slot]
    }

    /// Repairs the sorted view after membership changes: dead slots are
    /// filtered out (then become recyclable), pending inserts are sorted
    /// and back-merged in one linear pass. A no-op when membership is
    /// unchanged — the common steady-state tick. All work reuses retained
    /// buffers.
    pub fn refresh_sorted(&mut self) {
        if self.stale {
            let live = &self.live;
            self.sorted.retain(|&slot| live[slot as usize]);
            // A slot inserted and removed between refreshes dies while
            // still queued — it must not merge into the view.
            self.pending.retain(|&slot| live[slot as usize]);
            self.stale = false;
            // Quarantine over: the sorted view no longer references the
            // freed slots, so they may be recycled.
            self.free.append(&mut self.limbo);
        }
        if self.pending.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending);
        let keys = &self.keys;
        pending.sort_unstable_by_key(|&slot| keys[slot as usize]);
        // Backward in-place merge of the two sorted runs.
        let old_len = self.sorted.len();
        let total = old_len + pending.len();
        if total > self.sorted.capacity() {
            self.close_allocs += 1;
        }
        self.sorted.resize(total, 0);
        let mut read = old_len;
        let mut add = pending.len();
        let mut write = total;
        while add > 0 {
            if read > 0 && keys[self.sorted[read - 1] as usize] > keys[pending[add - 1] as usize] {
                self.sorted[write - 1] = self.sorted[read - 1];
                read -= 1;
            } else {
                self.sorted[write - 1] = pending[add - 1];
                add -= 1;
            }
            write -= 1;
        }
        pending.clear();
        self.pending = pending;
    }

    /// The live slots in ascending key order. Call
    /// [`PairSlab::refresh_sorted`] first after membership changes.
    #[inline]
    pub fn sorted_slots(&self) -> &[u32] {
        debug_assert!(!self.stale && self.pending.is_empty(), "sorted view not refreshed");
        &self.sorted
    }

    /// The live keys in ascending order, freshly collected (snapshot and
    /// inspection paths — the close path uses [`PairSlab::sorted_slots`]).
    pub fn sorted_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.live_slots().map(|slot| self.keys[slot]).collect();
        keys.sort_unstable();
        keys
    }

    /// Capacity-growth events observed in close-path buffers.
    #[inline]
    pub fn close_allocs(&self) -> u64 {
        self.close_allocs
    }

    /// Releases excess capacity and compacts the slab onto its live slots
    /// (call after bulk removals, e.g. a migration: linear walks cover
    /// the slot *bound*, so departed slots otherwise cost forever).
    pub fn shrink_to_fit(&mut self) {
        self.refresh_sorted();
        let live_count = self.index.len();
        let mut keys = Vec::with_capacity(live_count);
        let mut live = Vec::with_capacity(live_count);
        let mut score = Vec::with_capacity(live_count);
        let mut last_support = Vec::with_capacity(live_count);
        let mut since = Vec::with_capacity(live_count);
        let mut hist = Vec::with_capacity(live_count * self.history_len);
        let mut hist_head = Vec::with_capacity(live_count);
        let mut hist_count = Vec::with_capacity(live_count);
        // Walk the sorted view so the compacted slab is in key order and
        // the view maps 1:1 onto the new slots.
        for (new_slot, &old_slot) in self.sorted.iter().enumerate() {
            let old_slot = old_slot as usize;
            keys.push(self.keys[old_slot]);
            live.push(true);
            score.push(self.score[old_slot]);
            last_support.push(self.last_support[old_slot]);
            since.push(self.since[old_slot]);
            let base = old_slot * self.history_len;
            hist.extend_from_slice(&self.hist[base..base + self.history_len]);
            hist_head.push(self.hist_head[old_slot]);
            hist_count.push(self.hist_count[old_slot]);
            *self.index.get_mut(&self.keys[old_slot]).expect("live slot is indexed") =
                new_slot as u32;
        }
        self.keys = keys;
        self.live = live;
        self.score = score;
        self.last_support = last_support;
        self.since = since;
        self.hist = hist;
        self.hist_head = hist_head;
        self.hist_count = hist_count;
        self.free.clear();
        self.free.shrink_to_fit();
        self.limbo.shrink_to_fit();
        self.sorted = (0..live_count as u32).collect();
        self.index.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::Timestamp;

    fn slab() -> PairSlab {
        PairSlab::new(4)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = slab();
        assert!(s.insert_fresh(10, Tick(1), 2, 1000));
        assert!(!s.insert_fresh(10, Tick(2), 0, 1000), "double insert is a no-op");
        assert_eq!(s.len(), 1);
        let slot = s.slot_of(10).unwrap();
        assert_eq!(s.history_parts(slot), (&[0.0, 0.0][..], &[][..]), "backfill zeros");
        assert_eq!(s.last_support_at(slot), Tick(1));
        assert_eq!(s.since_at(slot), Tick(1));
        assert!(s.remove(10));
        assert!(!s.remove(10));
        assert!(s.is_empty());
    }

    #[test]
    fn history_ring_wraps_in_place() {
        let mut s = slab();
        s.insert_fresh(7, Tick(0), 0, 1000);
        let slot = s.slot_of(7).unwrap();
        for i in 0..6 {
            s.push_history(slot, i as f64);
        }
        // Capacity 4: values 2,3,4,5 retained, oldest → newest.
        let (older, newer) = s.history_parts(slot);
        let joined: Vec<f64> = older.iter().chain(newer).copied().collect();
        assert_eq!(joined, vec![2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.newest_history(slot), Some(5.0));
    }

    #[test]
    fn sorted_view_tracks_membership_incrementally() {
        let mut s = slab();
        for key in [30u64, 10, 20] {
            s.insert_fresh(key, Tick(0), 0, 1000);
        }
        s.refresh_sorted();
        let keys: Vec<u64> = s.sorted_slots().iter().map(|&slot| s.key_at(slot as usize)).collect();
        assert_eq!(keys, vec![10, 20, 30]);
        // Remove one, insert two (one of which reuses the freed slot only
        // after the quarantine clears).
        s.remove(20);
        s.insert_fresh(5, Tick(1), 0, 1000);
        s.insert_fresh(25, Tick(1), 0, 1000);
        s.refresh_sorted();
        let keys: Vec<u64> = s.sorted_slots().iter().map(|&slot| s.key_at(slot as usize)).collect();
        assert_eq!(keys, vec![5, 10, 25, 30]);
        assert_eq!(keys.len(), s.len());
        assert_eq!(s.sorted_keys(), keys);
        // The freed slot is recyclable now and must not duplicate.
        s.insert_fresh(15, Tick(2), 0, 1000);
        s.refresh_sorted();
        let keys: Vec<u64> = s.sorted_slots().iter().map(|&slot| s.key_at(slot as usize)).collect();
        assert_eq!(keys, vec![5, 10, 15, 25, 30]);
    }

    #[test]
    fn extract_and_insert_state_preserve_columns() {
        let mut s = slab();
        s.insert_fresh(42, Tick(3), 1, 1000);
        let slot = s.slot_of(42).unwrap();
        for v in [0.25, 0.5, 0.75, 0.9, 0.95] {
            s.push_history(slot, v);
        }
        s.score_mut(slot).set(Timestamp::from_hours(7), 0.625);
        s.set_last_support(slot, Tick(6));
        let state = s.extract(42).expect("tracked");
        assert!(s.is_empty());
        let mut t = slab();
        assert!(t.insert_state(42, state));
        let slot = t.slot_of(42).unwrap();
        let (older, newer) = t.history_parts(slot);
        let joined: Vec<f64> = older.iter().chain(newer).copied().collect();
        assert_eq!(joined, vec![0.5, 0.75, 0.9, 0.95], "ring tail survives the round-trip");
        assert_eq!(t.score_at(slot).value_at(Timestamp::from_hours(7)), 0.625);
        assert_eq!(t.last_support_at(slot), Tick(6));
        assert_eq!(t.since_at(slot), Tick(3));
    }

    #[test]
    fn shrink_to_fit_compacts_live_slots() {
        let mut s = slab();
        for key in 0..20u64 {
            s.insert_fresh(key * 2, Tick(0), 0, 1000);
            let slot = s.slot_of(key * 2).unwrap();
            s.push_history(slot, key as f64);
        }
        for key in 0..15u64 {
            s.remove(key * 2);
        }
        s.shrink_to_fit();
        assert_eq!(s.len(), 5);
        assert_eq!(s.slot_bound(), 5, "dead slots compacted away");
        for key in 15..20u64 {
            let slot = s.slot_of(key * 2).expect("survivor");
            assert_eq!(s.newest_history(slot), Some(key as f64));
        }
        s.refresh_sorted();
        assert_eq!(s.sorted_slots().len(), 5);
    }

    #[test]
    fn steady_state_refresh_is_a_noop() {
        let mut s = slab();
        for key in 0..8u64 {
            s.insert_fresh(key, Tick(0), 0, 1000);
        }
        s.refresh_sorted();
        let before = s.close_allocs();
        for _ in 0..100 {
            s.refresh_sorted();
        }
        assert_eq!(s.close_allocs(), before, "no growth without membership changes");
    }
}
