//! Personalization: continuous keyword queries and category preferences.
//!
//! §1: "EnBlogue consists also of a personalization component that allows
//! users to register continuous keyword queries or to choose pre-selected
//! topic categories to influence the nature of the emergent topics
//! presented." Show Case 3 demonstrates that different profiles see
//! "completely different or just differently ordered emergent topics".
//!
//! The model: a profile boosts the global emergence score of a topic by
//! its *relevance* — keyword matches against the pair's tag names and
//! membership in preferred categories. With `filter_only`, non-matching
//! topics are removed instead of down-ranked (a strict continuous query).
//!
//! Personalization deliberately sits *behind* the shared stage pipeline:
//! `N` subscriptions are `N` cheap re-rankings of the **same**
//! [`RankingSnapshot`], applied by [`crate::notify::PushBroker::publish`]
//! at delivery time. Windowing, pair tracking and shift scoring — the
//! expensive part — run exactly once per tick in the shared
//! [`crate::stages::StagePipeline`] regardless of subscriber count; this
//! is the paper's "shared shift computation" carried to the user-facing
//! layer.

use enblogue_types::{EnBlogueError, RankingSnapshot, TagId, TagInterner, TagPair};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A user's interest profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserProfile {
    /// Stable user identifier.
    pub user_id: String,
    /// Weighted keywords of the continuous query ("term based descriptions
    /// of their field of interest"). Weights are relative; 1.0 is typical.
    pub keywords: Vec<(String, f64)>,
    /// Preferred pre-defined topic categories (interned tag ids).
    pub categories: Vec<TagId>,
    /// Boost strength: personalised score = score × (1 + alpha × relevance).
    pub alpha: f64,
    /// Strict mode: drop topics with zero relevance instead of re-scoring.
    pub filter_only: bool,
}

impl UserProfile {
    /// A neutral profile (no keywords, no categories).
    pub fn new(user_id: impl Into<String>) -> Self {
        UserProfile {
            user_id: user_id.into(),
            keywords: Vec::new(),
            categories: Vec::new(),
            alpha: 1.0,
            filter_only: false,
        }
    }

    /// Adds a keyword with weight 1.
    #[must_use]
    pub fn with_keyword(mut self, keyword: impl Into<String>) -> Self {
        self.keywords.push((keyword.into().to_lowercase(), 1.0));
        self
    }

    /// Adds a weighted keyword, silently clamping the weight into the
    /// valid range (`weight.max(0.0)`, non-finite → 0). Use
    /// [`UserProfile::try_with_weighted_keyword`] when an invalid weight
    /// should be an error instead.
    #[must_use]
    pub fn with_weighted_keyword(mut self, keyword: impl Into<String>, weight: f64) -> Self {
        let weight = if weight.is_finite() { weight.max(0.0) } else { 0.0 };
        self.keywords.push((keyword.into().to_lowercase(), weight));
        self
    }

    /// Adds a weighted keyword, rejecting empty keywords and negative or
    /// non-finite weights.
    pub fn try_with_weighted_keyword(
        mut self,
        keyword: impl Into<String>,
        weight: f64,
    ) -> Result<Self, EnBlogueError> {
        let keyword = keyword.into();
        if keyword.trim().is_empty() {
            return Err(EnBlogueError::invalid_config("keyword", "keyword must be non-empty"));
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(EnBlogueError::invalid_config(
                "keyword_weight",
                format!("weight must be finite and >= 0, got {weight}"),
            ));
        }
        self.keywords.push((keyword.to_lowercase(), weight));
        Ok(self)
    }

    /// Adds a preferred category.
    #[must_use]
    pub fn with_category(mut self, category: TagId) -> Self {
        self.categories.push(category);
        self
    }

    /// Sets the boost strength, silently clamping into the valid range
    /// (`alpha.max(0.0)`, non-finite → 0). Use
    /// [`UserProfile::try_with_alpha`] when an invalid alpha should be an
    /// error instead.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = if alpha.is_finite() { alpha.max(0.0) } else { 0.0 };
        self
    }

    /// Sets the boost strength, rejecting negative or non-finite values.
    pub fn try_with_alpha(mut self, alpha: f64) -> Result<Self, EnBlogueError> {
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(EnBlogueError::invalid_config(
                "alpha",
                format!("alpha must be finite and >= 0, got {alpha}"),
            ));
        }
        self.alpha = alpha;
        Ok(self)
    }

    /// Enables strict filtering.
    #[must_use]
    pub fn filter_only(mut self) -> Self {
        self.filter_only = true;
        self
    }

    /// Relevance of one tag to this profile, given its resolved name
    /// (keyword + category parts). This is the *only* implementation of
    /// the relevance rule: the interner path and the pre-resolved serving
    /// path both funnel here.
    fn tag_relevance_named(&self, tag: TagId, name: Option<&str>) -> f64 {
        let mut relevance = 0.0;
        if self.categories.contains(&tag) {
            relevance += 1.0;
        }
        if !self.keywords.is_empty() {
            if let Some(name) = name {
                for (keyword, weight) in &self.keywords {
                    if name == keyword {
                        relevance += weight; // exact name match
                    } else if name.contains(keyword.as_str()) {
                        relevance += 0.5 * weight; // substring match
                    }
                }
            }
        }
        relevance
    }

    /// Relevance of a topic (pair) to this profile: the sum over members.
    pub fn relevance(&self, pair: TagPair, interner: &TagInterner) -> f64 {
        let lo = interner.name(pair.lo());
        let hi = interner.name(pair.hi());
        self.tag_relevance_named(pair.lo(), lo.as_deref())
            + self.tag_relevance_named(pair.hi(), hi.as_deref())
    }

    /// [`UserProfile::relevance`] against a pre-resolved, tag-sorted name
    /// table (see [`resolve_ranked_names`]) instead of a live interner.
    pub fn relevance_resolved(&self, pair: TagPair, names: &[(TagId, Arc<str>)]) -> f64 {
        self.tag_relevance_named(pair.lo(), lookup_name(names, pair.lo()))
            + self.tag_relevance_named(pair.hi(), lookup_name(names, pair.hi()))
    }
}

fn lookup_name(names: &[(TagId, Arc<str>)], tag: TagId) -> Option<&str> {
    names.binary_search_by_key(&tag, |&(t, _)| t).ok().map(|i| names[i].1.as_ref())
}

/// A personalised view of a global ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonalizedRanking {
    /// The user this view belongs to.
    pub user_id: String,
    /// `(pair, personalised score)`, best first.
    pub ranked: Vec<(TagPair, f64)>,
}

impl PersonalizedRanking {
    /// Rank position (0-based) of `pair`, if present.
    pub fn rank_of(&self, pair: TagPair) -> Option<usize> {
        self.ranked.iter().position(|&(p, _)| p == pair)
    }
}

/// Resolves the names of the distinct member tags of a snapshot's ranked
/// pairs into `out`, sorted by [`TagId`] (tags the lookup cannot name are
/// skipped — they can never match a keyword).
///
/// This is the shared half of the relevance pass: resolve once per
/// snapshot, then re-rank any number of profiles against the same table
/// with [`personalize_shared`]. The serving tier does exactly this at
/// publish time so personalized queries never touch the interner lock;
/// [`crate::notify::PushBroker`] does it once per published snapshot for
/// all clients. `out` is cleared first and reused (no allocation once its
/// capacity is warm).
pub fn resolve_ranked_names_into(
    snapshot: &RankingSnapshot,
    out: &mut Vec<(TagId, Arc<str>)>,
    mut lookup: impl FnMut(TagId) -> Option<Arc<str>>,
) {
    out.clear();
    for tag in snapshot.member_tags() {
        if out.iter().any(|&(t, _)| t == tag) {
            continue;
        }
        // Unnamed tags stay out of the table: absence means "no name",
        // exactly as a live interner lookup would answer.
        if let Some(name) = lookup(tag) {
            out.push((tag, name));
        }
    }
    out.sort_unstable_by_key(|&(t, _)| t);
}

/// [`resolve_ranked_names_into`] into a fresh table.
pub fn resolve_ranked_names(
    snapshot: &RankingSnapshot,
    lookup: impl FnMut(TagId) -> Option<Arc<str>>,
) -> Vec<(TagId, Arc<str>)> {
    let mut out = Vec::new();
    resolve_ranked_names_into(snapshot, &mut out, lookup);
    out
}

/// Applies `profile` to a global snapshot.
///
/// Scores become `score × (1 + alpha × relevance)`; with `filter_only`,
/// zero-relevance topics are dropped instead. Ties keep the global order
/// (stable sort), so a neutral profile reproduces the global ranking
/// exactly.
///
/// This resolves the ranked tags' names and delegates to
/// [`personalize_shared`] — callers re-ranking many profiles against one
/// snapshot (the push broker, serving-tier subscriptions) should resolve
/// once and share the table.
pub fn personalize(
    snapshot: &RankingSnapshot,
    profile: &UserProfile,
    interner: &TagInterner,
) -> PersonalizedRanking {
    let names = resolve_ranked_names(snapshot, |t| interner.name(t));
    personalize_shared(snapshot, profile, &names)
}

/// [`personalize`] against a pre-resolved name table (see
/// [`resolve_ranked_names`]). The single implementation of the
/// re-ranking rule; byte-identical to [`personalize`] when `names` was
/// resolved from the same interner.
pub fn personalize_shared(
    snapshot: &RankingSnapshot,
    profile: &UserProfile,
    names: &[(TagId, Arc<str>)],
) -> PersonalizedRanking {
    let mut ranked: Vec<(TagPair, f64)> = Vec::with_capacity(snapshot.ranked.len());
    for &(pair, score) in &snapshot.ranked {
        let relevance = profile.relevance_resolved(pair, names);
        if profile.filter_only {
            if relevance > 0.0 {
                ranked.push((pair, score * (1.0 + profile.alpha * relevance)));
            }
        } else {
            ranked.push((pair, score * (1.0 + profile.alpha * relevance)));
        }
    }
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    PersonalizedRanking { user_id: profile.user_id.clone(), ranked }
}

/// Rank-overlap diagnostics between two personalised rankings (Show Case 3
/// reports how different two users' views are).
pub fn jaccard_at_k(a: &PersonalizedRanking, b: &PersonalizedRanking, k: usize) -> f64 {
    let ka: std::collections::HashSet<TagPair> = a.ranked.iter().take(k).map(|&(p, _)| p).collect();
    let kb: std::collections::HashSet<TagPair> = b.ranked.iter().take(k).map(|&(p, _)| p).collect();
    if ka.is_empty() && kb.is_empty() {
        return 1.0;
    }
    let inter = ka.intersection(&kb).count() as f64;
    let union = ka.union(&kb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::{TagKind, Tick, Timestamp};

    fn snapshot(ranked: Vec<(TagPair, f64)>) -> RankingSnapshot {
        RankingSnapshot { tick: Tick(1), time: Timestamp::from_hours(1), ranked }
    }

    fn setup() -> (TagInterner, TagId, TagId, TagId, TagId) {
        let interner = TagInterner::new();
        let sports = interner.intern("sports", TagKind::Category);
        let politics = interner.intern("politics", TagKind::Category);
        let playoffs = interner.intern("playoffs", TagKind::Descriptor);
        let election = interner.intern("election night", TagKind::Descriptor);
        (interner, sports, politics, playoffs, election)
    }

    #[test]
    fn neutral_profile_preserves_global_order() {
        let (interner, sports, politics, playoffs, election) = setup();
        let snap = snapshot(vec![
            (TagPair::new(sports, playoffs), 0.9),
            (TagPair::new(politics, election), 0.8),
        ]);
        let neutral = UserProfile::new("u0");
        let view = personalize(&snap, &neutral, &interner);
        assert_eq!(view.ranked[0].0, TagPair::new(sports, playoffs));
        assert_eq!(view.ranked[1].0, TagPair::new(politics, election));
        assert_eq!(view.ranked[0].1, 0.9, "no boost without interests");
    }

    #[test]
    fn category_preference_reorders() {
        let (interner, sports, politics, playoffs, election) = setup();
        let snap = snapshot(vec![
            (TagPair::new(sports, playoffs), 0.9),
            (TagPair::new(politics, election), 0.8),
        ]);
        let wonk = UserProfile::new("wonk").with_category(politics).with_alpha(2.0);
        let view = personalize(&snap, &wonk, &interner);
        assert_eq!(view.ranked[0].0, TagPair::new(politics, election), "preferred category wins");
        assert!(view.ranked[0].1 > 0.8);
    }

    #[test]
    fn keyword_queries_match_names_and_substrings() {
        let (interner, sports, politics, playoffs, election) = setup();
        let profile = UserProfile::new("fan").with_keyword("playoffs").with_keyword("election");
        // Exact name match on "playoffs": weight 1.0.
        assert!(profile.relevance(TagPair::new(sports, playoffs), &interner) >= 1.0);
        // Substring match on "election night": half weight.
        let sub = profile.relevance(TagPair::new(politics, election), &interner);
        assert!(sub > 0.0 && sub < 1.0);
    }

    #[test]
    fn filter_only_drops_irrelevant_topics() {
        let (interner, sports, politics, playoffs, election) = setup();
        let snap = snapshot(vec![
            (TagPair::new(sports, playoffs), 0.9),
            (TagPair::new(politics, election), 0.8),
        ]);
        let strict = UserProfile::new("strict").with_category(politics).filter_only();
        let view = personalize(&snap, &strict, &interner);
        assert_eq!(view.ranked.len(), 1);
        assert_eq!(view.ranked[0].0, TagPair::new(politics, election));
    }

    #[test]
    fn two_profiles_see_different_rankings() {
        let (interner, sports, politics, playoffs, election) = setup();
        let snap = snapshot(vec![
            (TagPair::new(sports, playoffs), 0.85),
            (TagPair::new(politics, election), 0.84),
        ]);
        let fan = UserProfile::new("fan").with_category(sports).with_alpha(1.0);
        let wonk = UserProfile::new("wonk").with_category(politics).with_alpha(1.0);
        let fan_view = personalize(&snap, &fan, &interner);
        let wonk_view = personalize(&snap, &wonk, &interner);
        assert_ne!(fan_view.ranked[0].0, wonk_view.ranked[0].0);
        assert_eq!(jaccard_at_k(&fan_view, &wonk_view, 1), 0.0);
        assert_eq!(jaccard_at_k(&fan_view, &wonk_view, 2), 1.0, "same topics, different order");
    }

    #[test]
    fn jaccard_of_empty_rankings_is_one() {
        let a = PersonalizedRanking { user_id: "a".into(), ranked: vec![] };
        let b = PersonalizedRanking { user_id: "b".into(), ranked: vec![] };
        assert_eq!(jaccard_at_k(&a, &b, 5), 1.0);
    }

    #[test]
    fn weighted_keywords_scale_relevance() {
        let (interner, sports, _, playoffs, _) = setup();
        let light = UserProfile::new("l").with_weighted_keyword("playoffs", 0.5);
        let heavy = UserProfile::new("h").with_weighted_keyword("playoffs", 3.0);
        let pair = TagPair::new(sports, playoffs);
        assert!(heavy.relevance(pair, &interner) > light.relevance(pair, &interner));
    }

    #[test]
    fn plain_builders_clamp_silently() {
        assert_eq!(UserProfile::new("x").with_alpha(-1.0).alpha, 0.0);
        assert_eq!(UserProfile::new("x").with_alpha(f64::NAN).alpha, 0.0);
        assert_eq!(UserProfile::new("x").with_alpha(2.5).alpha, 2.5);
        let p = UserProfile::new("x").with_weighted_keyword("k", -3.0);
        assert_eq!(p.keywords[0].1, 0.0);
        let p = UserProfile::new("x").with_weighted_keyword("k", f64::INFINITY);
        assert_eq!(p.keywords[0].1, 0.0);
    }

    #[test]
    fn try_builders_reject_invalid_inputs() {
        assert!(UserProfile::new("x").try_with_alpha(-1.0).is_err());
        assert!(UserProfile::new("x").try_with_alpha(f64::NAN).is_err());
        assert_eq!(UserProfile::new("x").try_with_alpha(2.5).unwrap().alpha, 2.5);
        assert!(UserProfile::new("x").try_with_weighted_keyword("", 1.0).is_err());
        assert!(UserProfile::new("x").try_with_weighted_keyword("k", -0.5).is_err());
        assert!(UserProfile::new("x").try_with_weighted_keyword("k", f64::NAN).is_err());
        let p = UserProfile::new("x").try_with_weighted_keyword("K", 2.0).unwrap();
        assert_eq!(p.keywords[0], ("k".to_string(), 2.0));
    }

    #[test]
    fn shared_pass_matches_interner_path() {
        let (interner, sports, politics, playoffs, election) = setup();
        let snap = snapshot(vec![
            (TagPair::new(sports, playoffs), 0.9),
            (TagPair::new(politics, election), 0.8),
        ]);
        let names = resolve_ranked_names(&snap, |t| interner.name(t));
        for profile in [
            UserProfile::new("a").with_keyword("playoffs").with_alpha(2.0),
            UserProfile::new("b").with_category(politics).filter_only(),
            UserProfile::new("c").with_weighted_keyword("election", 3.0),
        ] {
            let via_interner = personalize(&snap, &profile, &interner);
            let via_table = personalize_shared(&snap, &profile, &names);
            assert_eq!(via_interner, via_table, "user {}", profile.user_id);
            for &(pair, _) in &snap.ranked {
                assert_eq!(
                    profile.relevance(pair, &interner),
                    profile.relevance_resolved(pair, &names)
                );
            }
        }
    }
}
