//! Stages (ii) and (iii): candidate-pair tracking, correlation series and
//! decayed-max shift scores — hash-sharded for parallel tick close.
//!
//! "We use seed tags to generate candidate topics, i.e., pairs of tags that
//! contain at least one seed tag. … For each such pair, we continuously
//! monitor the amount of documents that are annotated with both tags."
//! (§3(i)–(ii))
//!
//! The registry splits per-pair state into `N` hash shards (routing:
//! [`enblogue_types::shard_of_packed`], storage:
//! [`enblogue_window::ShardedWindowedCounter`]). Every pair's state is
//! fully contained in its shard, so discovery, scoring and support-based
//! eviction fan out shard-parallel through
//! [`enblogue_stream::exec::fanout`] while the cap-based eviction and the
//! final ranking merge stay global. Rankings are **identical for any shard
//! count** — sharding is pure state partitioning, never a semantic knob.

use enblogue_stats::shift::ShiftScorer;
use enblogue_stream::exec::fanout;
use enblogue_types::{shard_of_packed, FxHashMap, FxHashSet, TagId, TagPair, Tick, Timestamp};
use enblogue_window::{DecayValue, RingBuffer, ShardedWindowedCounter, TopK, WindowedCounter};

/// Per-pair tracked state.
pub struct PairState {
    /// Correlation values of past ticks (oldest → newest), the predictor's
    /// input window.
    pub history: RingBuffer<f64>,
    /// The decayed-max shift score (§3(iii)).
    pub score: DecayValue,
    /// Last tick in which the pair had window support (for eviction).
    pub last_support: Tick,
    /// Tick at which tracking started.
    pub since: Tick,
}

/// Summary of one ranked pair, enriched for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedPairInfo {
    /// The pair.
    pub pair: TagPair,
    /// Its current decayed score.
    pub score: f64,
    /// Newest correlation value.
    pub correlation: f64,
    /// Ticks under tracking.
    pub tracked_ticks: u64,
}

/// One hash shard of tracked-pair state.
///
/// A shard owns every tracked pair routed to it plus the open-tick
/// co-occurrence candidates; its windowed co-occurrence counts live in the
/// registry's [`ShardedWindowedCounter`] under the same index.
pub struct PairShard {
    states: FxHashMap<u64, PairState>,
    /// Pairs that co-occurred in the open tick (discovery candidates).
    current: FxHashSet<u64>,
    /// Copy of the registry's scalar parameters (shards are handed to
    /// workers detached from the registry during fan-out).
    params: PairParams,
    discovered: u64,
    evicted: u64,
}

impl PairShard {
    fn new(params: PairParams) -> Self {
        PairShard {
            states: FxHashMap::default(),
            current: FxHashSet::default(),
            params,
            discovered: 0,
            evicted: 0,
        }
    }

    fn discover(&mut self, packed: u64, tick: Tick, backfill_zeros: usize) {
        let params = self.params;
        self.states.entry(packed).or_insert_with(|| {
            self.discovered += 1;
            let mut history = RingBuffer::new(params.history_len);
            for _ in 0..backfill_zeros.min(params.history_len - 1) {
                history.push(0.0);
            }
            PairState {
                history,
                score: DecayValue::new(params.half_life_ms),
                last_support: tick,
                since: tick,
            }
        });
    }

    fn update_pair(
        &mut self,
        packed: u64,
        correlation: f64,
        support: u64,
        tick: Tick,
        now: Timestamp,
        scorer: &ShiftScorer,
    ) -> f64 {
        let state = self.states.get_mut(&packed).expect("update_pair on untracked pair");
        let history: Vec<f64> = state.history.iter().copied().collect();
        // Scoring is gated on window support: measures like overlap or NPMI
        // saturate to 1.0 on a single co-occurrence of two rare tags, and
        // without the gate such one-off pairs would flood the ranking.
        // (The correlation still enters the history, so the pair's series
        // stays tick-aligned either way.)
        let shift = if support >= self.params.min_pair_support {
            scorer.score(&history, correlation).map(|(s, _)| s).unwrap_or(0.0)
        } else {
            0.0
        };
        let score = state.score.observe_max(now, shift);
        state.history.push(correlation);
        if support >= self.params.min_pair_support {
            state.last_support = tick;
        }
        score
    }

    /// Sorted packed keys (deterministic per-shard iteration order).
    fn sorted_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.states.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

/// Scalar tracking parameters shared by all shards.
#[derive(Debug, Clone, Copy)]
struct PairParams {
    history_len: usize,
    half_life_ms: u64,
    min_pair_support: u64,
    max_tracked_pairs: usize,
}

/// The candidate-pair registry: discovery, scoring, eviction, ranking —
/// over `N` hash shards.
pub struct ShardedPairRegistry {
    shards: Vec<PairShard>,
    /// Windowed per-pair co-occurrence counts, sharded alongside `shards`.
    counts: ShardedWindowedCounter<u64>,
    params: PairParams,
}

impl ShardedPairRegistry {
    /// A registry with `shards` hash shards whose correlation histories
    /// hold `history_len` ticks.
    ///
    /// # Panics
    /// Panics if `shards` is zero or `history_len < 2` (predictors need at
    /// least two history slots).
    pub fn new(
        shards: usize,
        history_len: usize,
        half_life_ms: u64,
        min_pair_support: u64,
        max_tracked_pairs: usize,
    ) -> Self {
        assert!(shards > 0, "shard count must be positive");
        assert!(history_len >= 2, "predictors need at least two history slots");
        let params = PairParams { history_len, half_life_ms, min_pair_support, max_tracked_pairs };
        ShardedPairRegistry {
            shards: (0..shards).map(|_| PairShard::new(params)).collect(),
            counts: ShardedWindowedCounter::new(shards, history_len),
            params,
        }
    }

    /// Number of hash shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn route(&self, packed: u64) -> usize {
        shard_of_packed(packed, self.shards.len())
    }

    /// Number of currently tracked pairs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.states.len()).sum()
    }

    /// Whether no pair is tracked.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.states.is_empty())
    }

    /// Whether `pair` is currently tracked.
    pub fn is_tracked(&self, pair: TagPair) -> bool {
        let packed = pair.packed();
        self.shards[self.route(packed)].states.contains_key(&packed)
    }

    /// Total pairs ever discovered (metrics).
    pub fn discovered_total(&self) -> u64 {
        self.shards.iter().map(|s| s.discovered).sum()
    }

    /// Total pairs evicted (metrics).
    pub fn evicted_total(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted).sum()
    }

    /// Records one co-occurrence of `packed` in the open tick: counts it
    /// into the pair's windowed series and marks it a discovery candidate.
    pub fn observe_pair(&mut self, tick: Tick, packed: u64) {
        let shard = self.route(packed);
        self.counts.increment(shard, tick, packed);
        self.shards[shard].current.insert(packed);
    }

    /// Applies a shard-partitioned batch of co-occurrence observations,
    /// fanning out one scoped worker per shard when `parallel` is set.
    ///
    /// `buckets[i]` must hold exactly the observations routed to shard `i`
    /// (see `enblogue_ingest::partition`), in stream order — then each
    /// worker performs the same writes, in the same order, that a
    /// sequential [`ShardedPairRegistry::observe_pair`] loop would have
    /// sent to its shard, so results are identical in either mode.
    ///
    /// # Panics
    /// Panics if `buckets` does not match the shard count.
    pub fn ingest_partitioned(&mut self, buckets: &[Vec<(Tick, u64)>], parallel: bool) {
        /// One shard's slice of an ingest fan-out: its pair states, its
        /// windowed counter, and the observations routed to it.
        type ShardWork<'a> = (&'a mut PairShard, &'a mut WindowedCounter<u64>, &'a [(Tick, u64)]);
        assert_eq!(buckets.len(), self.shards.len(), "bucket count must match shard count");
        // Zip each pair shard with its windowed counter so one worker owns
        // both halves of a shard's state.
        let mut work: Vec<ShardWork<'_>> = self
            .shards
            .iter_mut()
            .zip(self.counts.shards_mut().iter_mut())
            .zip(buckets.iter())
            .map(|((shard, counter), bucket)| (shard, counter, bucket.as_slice()))
            .collect();
        fanout(&mut work, parallel, |_, (shard, counter, bucket)| {
            for &(tick, packed) in bucket.iter() {
                counter.increment(tick, packed);
                shard.current.insert(packed);
            }
        });
    }

    /// The windowed co-occurrence count of `pair`.
    pub fn pair_count(&self, pair: TagPair) -> u64 {
        let packed = pair.packed();
        self.counts.count(self.route(packed), packed)
    }

    /// Aligns every shard's count window to the closing `tick` (gap ticks
    /// expire data).
    pub fn advance_to(&mut self, tick: Tick) {
        self.counts.advance_to(tick);
    }

    /// Starts tracking `pair` at `tick` if it is not yet tracked.
    ///
    /// `backfill_zeros` seeds the correlation history with that many 0.0
    /// values. A pair is discovered the moment it first co-occurs with a
    /// seed — but its correlation *was* zero in the window before that, and
    /// without the backfill a topic that appears fully formed (the demo's
    /// "SIGMOD Athens" stunt: two tags that only ever occur together) would
    /// present a flat history at 1.0 and never register as a shift. The
    /// engine caps the backfill by stream age so a cold start does not make
    /// every initial pair look emergent.
    pub fn discover(&mut self, pair: TagPair, tick: Tick, backfill_zeros: usize) {
        let packed = pair.packed();
        let shard = self.route(packed);
        self.shards[shard].discover(packed, tick, backfill_zeros);
    }

    /// Promotes this tick's co-occurrence candidates that contain a seed
    /// into tracked pairs, shard-parallel when `parallel` is set.
    pub fn discover_seeded(
        &mut self,
        seeds: &FxHashSet<TagId>,
        tick: Tick,
        backfill_zeros: usize,
        parallel: bool,
    ) {
        fanout(&mut self.shards, parallel, |_, shard| {
            let candidates: Vec<u64> = shard.current.drain().collect();
            for packed in candidates {
                let pair = TagPair::from_packed(packed);
                if seeds.contains(&pair.lo()) || seeds.contains(&pair.hi()) {
                    shard.discover(packed, tick, backfill_zeros);
                }
            }
        });
    }

    /// Updates one tracked pair at a tick close.
    ///
    /// * `correlation` — the windowed correlation value of this tick,
    /// * `support` — windowed co-occurrence count (for eviction),
    /// * `now` — stream time of the tick end (drives score decay).
    ///
    /// Returns the new decayed-max score. The scorer sees the history
    /// *before* this tick's value; afterwards the value is appended.
    pub fn update_pair(
        &mut self,
        pair: TagPair,
        correlation: f64,
        support: u64,
        tick: Tick,
        now: Timestamp,
        scorer: &ShiftScorer,
    ) -> f64 {
        let packed = pair.packed();
        let shard = self.route(packed);
        self.shards[shard].update_pair(packed, correlation, support, tick, now, scorer)
    }

    /// Runs the correlation + shift-scoring update over every tracked
    /// pair, shard-parallel when `parallel` is set.
    ///
    /// `correlate` maps `(pair, windowed co-occurrence count)` to this
    /// tick's correlation value; it must be a pure function of its inputs
    /// and shared immutable state (it is called concurrently from shard
    /// workers). Per-shard iteration is in sorted key order, and pairs are
    /// independent, so the outcome is identical for any shard count and
    /// either execution mode.
    pub fn score_all<C>(
        &mut self,
        tick: Tick,
        now: Timestamp,
        scorer: &ShiftScorer,
        parallel: bool,
        correlate: C,
    ) where
        C: Fn(TagPair, u64) -> f64 + Sync,
    {
        let counts = &self.counts;
        fanout(&mut self.shards, parallel, |index, shard| {
            for packed in shard.sorted_keys() {
                let pair = TagPair::from_packed(packed);
                let ab = counts.count(index, packed);
                let correlation = correlate(pair, ab);
                shard.update_pair(packed, correlation, ab, tick, now, scorer);
            }
        });
    }

    /// Evicts pairs without support for a full history window (per shard,
    /// optionally parallel) and enforces the global tracked-pair cap
    /// (lowest current scores go first). Returns the number evicted.
    pub fn evict(&mut self, tick: Tick, now: Timestamp) -> usize {
        self.evict_parallel(tick, now, false)
    }

    /// [`ShardedPairRegistry::evict`] with explicit shard fan-out control.
    pub fn evict_parallel(&mut self, tick: Tick, now: Timestamp, parallel: bool) -> usize {
        let evicted_before = self.evicted_total();
        let horizon = self.params.history_len as u64;
        fanout(&mut self.shards, parallel, |_, shard| {
            let before = shard.states.len();
            shard.states.retain(|_, state| tick.since(state.last_support) < horizon);
            shard.evicted += (before - shard.states.len()) as u64;
        });

        // The cap is a global memory bound, so it cannot be enforced
        // shard-locally: collect (score, key) across shards and drop the
        // globally weakest — the same order the unsharded registry used.
        let live = self.len();
        if live > self.params.max_tracked_pairs {
            let excess = live - self.params.max_tracked_pairs;
            let mut scored: Vec<(f64, u64)> = Vec::with_capacity(live);
            for shard in &self.shards {
                scored.extend(
                    shard.states.iter().map(|(&packed, s)| (s.score.value_at(now), packed)),
                );
            }
            scored.sort_unstable_by(|a, b| {
                a.0.partial_cmp(&b.0).expect("finite scores").then(a.1.cmp(&b.1))
            });
            for &(_, packed) in scored.iter().take(excess) {
                let shard = self.route(packed);
                self.shards[shard].states.remove(&packed);
                self.shards[shard].evicted += 1;
            }
        }
        (self.evicted_total() - evicted_before) as usize
    }

    /// The current top-k ranking by decayed score at `now`, merged across
    /// shards (identical for any shard count).
    pub fn ranking(&self, k: usize, now: Timestamp) -> Vec<(TagPair, f64)> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut topk: TopK<u64> = TopK::new(k);
        for shard in &self.shards {
            for (&packed, state) in &shard.states {
                let score = state.score.value_at(now);
                if score > 0.0 {
                    topk.offer(packed, score);
                }
            }
        }
        topk.into_sorted().into_iter().map(|r| (TagPair::from_packed(r.key), r.score)).collect()
    }

    /// Rich info for `pair`, if tracked.
    pub fn info(&self, pair: TagPair, tick: Tick, now: Timestamp) -> Option<TrackedPairInfo> {
        let packed = pair.packed();
        self.shards[self.route(packed)].states.get(&packed).map(|state| TrackedPairInfo {
            pair,
            score: state.score.value_at(now),
            correlation: state.history.newest().copied().unwrap_or(0.0),
            tracked_ticks: tick.since(state.since),
        })
    }

    /// The correlation history of `pair` (oldest → newest), if tracked.
    pub fn history_of(&self, pair: TagPair) -> Option<Vec<f64>> {
        let packed = pair.packed();
        self.shards[self.route(packed)]
            .states
            .get(&packed)
            .map(|s| s.history.iter().copied().collect())
    }

    /// Packed keys of all tracked pairs, globally sorted (deterministic
    /// iteration order for tests and inspection).
    pub fn tracked_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> =
            self.shards.iter().flat_map(|s| s.states.keys().copied()).collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_stats::predict::PredictorKind;
    use enblogue_stats::shift::{ErrorNormalization, ShiftScorer};
    use enblogue_types::TagId;

    fn pair(a: u32, b: u32) -> TagPair {
        TagPair::new(TagId(a), TagId(b))
    }

    fn scorer() -> ShiftScorer {
        ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Absolute)
    }

    fn registry() -> ShardedPairRegistry {
        ShardedPairRegistry::new(1, 8, Timestamp::DAY, 1, 1000)
    }

    fn hour(h: u64) -> Timestamp {
        Timestamp::from_hours(h)
    }

    #[test]
    fn discovery_is_idempotent() {
        let mut r = registry();
        r.discover(pair(1, 2), Tick(0), 0);
        r.discover(pair(2, 1), Tick(5), 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.discovered_total(), 1);
        assert!(r.is_tracked(pair(1, 2)));
    }

    #[test]
    fn flat_correlation_scores_zero() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..8u64 {
            let score = r.update_pair(pair(1, 2), 0.2, 3, Tick(t), hour(t), &s);
            if t >= 1 {
                assert_eq!(score, 0.0, "flat series must not alarm at tick {t}");
            }
        }
    }

    #[test]
    fn jump_raises_score_then_decays() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..6u64 {
            r.update_pair(pair(1, 2), 0.1, 3, Tick(t), hour(t), &s);
        }
        let jumped = r.update_pair(pair(1, 2), 0.6, 10, Tick(6), hour(6), &s);
        assert!(jumped > 0.3, "jump must register: {jumped}");
        // Correlation stays high: no further *shift*, score decays (half-
        // life is one day here).
        let later = r.update_pair(pair(1, 2), 0.6, 10, Tick(30), hour(30), &s);
        assert!(later < jumped, "score must decay after the shift: {later} !< {jumped}");
        assert!(later > jumped * 0.4, "one day later roughly half remains: {later}");
    }

    #[test]
    fn decayed_max_keeps_past_peak_over_small_new_errors() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..6u64 {
            r.update_pair(pair(1, 2), 0.1, 3, Tick(t), hour(t), &s);
        }
        let peak = r.update_pair(pair(1, 2), 0.7, 10, Tick(6), hour(6), &s);
        // A tiny wobble an hour later must not displace the decayed peak.
        let next = r.update_pair(pair(1, 2), 0.71, 10, Tick(7), hour(7), &s);
        assert!(next > 0.9 * peak, "decayed peak must dominate: {next} vs {peak}");
    }

    #[test]
    fn eviction_after_support_loss() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        r.update_pair(pair(1, 2), 0.3, 5, Tick(0), hour(0), &s);
        // Ticks 1..8: no support (support < min = 1 is passed as 0).
        for t in 1..9u64 {
            r.update_pair(pair(1, 2), 0.0, 0, Tick(t), hour(t), &s);
        }
        let evicted = r.evict(Tick(9), hour(9));
        assert_eq!(evicted, 1);
        assert!(r.is_empty());
        assert_eq!(r.evicted_total(), 1);
    }

    #[test]
    fn supported_pairs_survive_eviction() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..20u64 {
            r.update_pair(pair(1, 2), 0.3, 5, Tick(t), hour(t), &s);
            assert_eq!(r.evict(Tick(t), hour(t)), 0);
        }
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn cap_evicts_lowest_scores() {
        let mut r = ShardedPairRegistry::new(1, 4, Timestamp::DAY, 1, 2);
        let s = scorer();
        for (i, p) in [pair(1, 2), pair(3, 4), pair(5, 6)].into_iter().enumerate() {
            r.discover(p, Tick(0), 0);
            // Give each pair a different shift magnitude via a jump from 0.
            r.update_pair(p, 0.0, 1, Tick(0), hour(0), &s);
            r.update_pair(p, 0.1 * (i as f64 + 1.0), 1, Tick(1), hour(1), &s);
        }
        assert_eq!(r.len(), 3);
        let evicted = r.evict(Tick(1), hour(1));
        assert_eq!(evicted, 1);
        assert!(!r.is_tracked(pair(1, 2)), "weakest score evicted");
        assert!(r.is_tracked(pair(5, 6)));
    }

    #[test]
    fn ranking_orders_by_decayed_score() {
        let mut r = registry();
        let s = scorer();
        for p in [pair(1, 2), pair(3, 4)] {
            r.discover(p, Tick(0), 0);
            for t in 0..4u64 {
                r.update_pair(p, 0.1, 3, Tick(t), hour(t), &s);
            }
        }
        // Pair (3,4) jumps harder.
        r.update_pair(pair(1, 2), 0.3, 3, Tick(4), hour(4), &s);
        r.update_pair(pair(3, 4), 0.8, 3, Tick(4), hour(4), &s);
        let ranking = r.ranking(10, hour(4));
        assert_eq!(ranking.len(), 2);
        assert_eq!(ranking[0].0, pair(3, 4));
        assert!(ranking[0].1 > ranking[1].1);
        // k = 1 truncates.
        assert_eq!(r.ranking(1, hour(4)).len(), 1);
    }

    #[test]
    fn zero_scores_are_not_ranked() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        r.update_pair(pair(1, 2), 0.2, 3, Tick(0), hour(0), &s);
        r.update_pair(pair(1, 2), 0.2, 3, Tick(1), hour(1), &s);
        assert!(r.ranking(5, hour(1)).is_empty(), "nothing emergent yet");
    }

    #[test]
    fn info_reports_current_state() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(3), 0);
        r.update_pair(pair(1, 2), 0.25, 3, Tick(3), hour(3), &s);
        let info = r.info(pair(1, 2), Tick(5), hour(5)).unwrap();
        assert_eq!(info.pair, pair(1, 2));
        assert_eq!(info.correlation, 0.25);
        assert_eq!(info.tracked_ticks, 2);
        assert!(r.info(pair(7, 8), Tick(5), hour(5)).is_none());
        assert_eq!(r.history_of(pair(1, 2)), Some(vec![0.25]));
    }

    /// Drives the full sharded close path (observe → discover → score →
    /// evict → rank) for one shard/parallelism configuration.
    fn sharded_run(shards: usize, parallel: bool) -> (Vec<u64>, Vec<(TagPair, f64)>, u64, u64) {
        let mut r = ShardedPairRegistry::new(shards, 6, Timestamp::DAY, 1, 100);
        let s = scorer();
        let seeds: FxHashSet<TagId> = (0..6u32).map(TagId).collect();
        for t in 0..10u64 {
            // A rotating set of co-occurring pairs; pair (0,1) jumps late.
            for a in 0..6u32 {
                for b in (a + 1)..6u32 {
                    let packed = pair(a, b).packed();
                    let active =
                        (a + b + t as u32).is_multiple_of(3) || (a == 0 && b == 1 && t >= 7);
                    if active {
                        r.observe_pair(Tick(t), packed);
                        r.observe_pair(Tick(t), packed);
                    }
                }
            }
            r.advance_to(Tick(t));
            r.discover_seeded(&seeds, Tick(t), t.min(5) as usize, parallel);
            r.score_all(Tick(t), hour(t), &s, parallel, |p, ab| {
                // A synthetic but deterministic correlation: co-occurrence
                // count scaled by the pair's identity.
                ab as f64 / (4.0 + (p.lo().0 + p.hi().0) as f64)
            });
            r.evict_parallel(Tick(t), hour(t), parallel);
        }
        (r.tracked_keys(), r.ranking(10, hour(9)), r.discovered_total(), r.evicted_total())
    }

    #[test]
    fn sharding_is_invisible_in_results() {
        let baseline = sharded_run(1, false);
        for shards in [2usize, 4, 16] {
            assert_eq!(sharded_run(shards, false), baseline, "{shards} shards, serial");
            assert_eq!(sharded_run(shards, true), baseline, "{shards} shards, parallel");
        }
        assert_eq!(sharded_run(1, true), baseline, "parallel flag alone");
        assert!(!baseline.0.is_empty(), "the workload must actually track pairs");
        assert!(!baseline.1.is_empty(), "the workload must actually rank pairs");
    }

    #[test]
    fn shards_partition_the_key_space() {
        let mut r = ShardedPairRegistry::new(4, 4, Timestamp::DAY, 1, 1000);
        for a in 0..20u32 {
            r.discover(pair(a, a + 100), Tick(0), 0);
        }
        assert_eq!(r.len(), 20);
        assert_eq!(r.shard_count(), 4);
        assert_eq!(r.tracked_keys().len(), 20, "every pair lands in exactly one shard");
        for a in 0..20u32 {
            assert!(r.is_tracked(pair(a, a + 100)), "routed lookup finds pair {a}");
        }
    }

    #[test]
    fn ingest_partitioned_matches_observe_pair() {
        let shards = 4usize;
        let observations: Vec<(Tick, u64)> = (0..60u64)
            .map(|i| (Tick(i / 20), pair((i % 7) as u32, (i % 5) as u32 + 10).packed()))
            .collect();
        let run = |partitioned: bool, parallel: bool| {
            let mut r = ShardedPairRegistry::new(shards, 6, Timestamp::DAY, 1, 1000);
            if partitioned {
                let mut buckets: Vec<Vec<(Tick, u64)>> = vec![Vec::new(); shards];
                for &(tick, packed) in &observations {
                    buckets[shard_of_packed(packed, shards)].push((tick, packed));
                }
                r.ingest_partitioned(&buckets, parallel);
            } else {
                for &(tick, packed) in &observations {
                    r.observe_pair(tick, packed);
                }
            }
            // Promote everything so the counted state becomes observable.
            let seeds: FxHashSet<TagId> = (0..20u32).map(TagId).collect();
            r.discover_seeded(&seeds, Tick(2), 0, false);
            let counts: Vec<u64> =
                r.tracked_keys().iter().map(|&k| r.pair_count(TagPair::from_packed(k))).collect();
            (r.tracked_keys(), counts)
        };
        let sequential = run(false, false);
        assert!(!sequential.0.is_empty());
        assert_eq!(run(true, false), sequential, "partitioned serial");
        assert_eq!(run(true, true), sequential, "partitioned shard-parallel");
    }

    #[test]
    #[should_panic(expected = "bucket count")]
    fn ingest_partitioned_rejects_wrong_bucket_count() {
        let mut r = ShardedPairRegistry::new(4, 4, Timestamp::DAY, 1, 1000);
        let buckets: Vec<Vec<(Tick, u64)>> = vec![Vec::new(); 3];
        r.ingest_partitioned(&buckets, false);
    }

    #[test]
    fn observe_pair_feeds_windowed_counts() {
        let mut r = ShardedPairRegistry::new(4, 3, Timestamp::DAY, 1, 1000);
        let p = pair(1, 2);
        r.observe_pair(Tick(0), p.packed());
        r.observe_pair(Tick(1), p.packed());
        assert_eq!(r.pair_count(p), 2);
        r.advance_to(Tick(3)); // tick 0 falls out of the 3-tick window
        assert_eq!(r.pair_count(p), 1);
    }
}
