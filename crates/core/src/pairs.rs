//! Stages (ii) and (iii): candidate-pair tracking, correlation series and
//! decayed-max shift scores — hash-sharded for parallel tick close, with
//! load-aware dynamic rebalancing.
//!
//! "We use seed tags to generate candidate topics, i.e., pairs of tags that
//! contain at least one seed tag. … For each such pair, we continuously
//! monitor the amount of documents that are annotated with both tags."
//! (§3(i)–(ii))
//!
//! The registry splits per-pair state into a pool of hash shards (routing:
//! the versioned [`enblogue_types::RoutingTable`], storage:
//! [`enblogue_window::ShardedWindowedCounter`]). Every pair's state is
//! fully contained in its shard, so discovery, scoring and support-based
//! eviction fan out shard-parallel through
//! [`enblogue_stream::exec::fanout`] while the cap-based eviction and the
//! final ranking merge stay global.
//!
//! Routing is *state*, not a pure function: keys hash onto a fixed slot
//! grid, slots map to shard stores, and a [`RebalanceConfig`]-driven
//! policy may re-target slots at tick close — growing or shrinking the
//! *active* store count with the tracked-pair population under the
//! `max_tracked_pairs` cap, and re-spreading hot slots when observed load
//! skews (real streams concentrate on few hot tags, which static hashing
//! cannot split apart once they land together). A migration pass moves
//! each re-targeted slot's pair states *and* windowed counts between
//! stores bit-for-bit. Rankings are **identical for any shard count,
//! routing table, or rebalance schedule** — sharding and rebalancing are
//! pure execution knobs, never semantic ones (pinned by
//! `tests/stage_parity.rs`).

use crate::query::ViewData;
use crate::slab::PairSlab;
pub use crate::slab::PairState;
use crate::snapshot::{corrupt, SnapReader, SnapWriter};
use enblogue_stats::predict::{HistoryTile, SeriesView, LANES};
use enblogue_stats::shift::ShiftScorer;
use enblogue_stream::exec::fanout;
use enblogue_telemetry::{EventKind, Histogram, Journal, Telemetry};
use enblogue_types::{
    EnBlogueError, FxHashSet, RoutingTable, SharedRouting, TagId, TagPair, Tick, Timestamp,
    DEFAULT_SLOTS_PER_SHARD,
};
use enblogue_window::{
    DecayMemo, DecayValue, KeyWindow, RingBuffer, ShardedWindowedCounter, TopK, WindowedCounter,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of the load-aware shard rebalancer (see
/// [`ShardedPairRegistry::maybe_rebalance`]).
///
/// All knobs are *execution* knobs: rankings are byte-identical for any
/// setting. The policy runs tick-aligned (decisions only at tick close, on
/// deterministic load counters), so replays of the same stream make the
/// same rebalancing decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebalanceConfig {
    /// Master switch. Disabled, the registry keeps the epoch-0 uniform
    /// table forever — exactly the classic static hash sharding.
    pub enabled: bool,
    /// Slots allocated per shard store — the migration granularity (a
    /// rebalance re-targets whole slots, never single keys).
    pub slots_per_shard: usize,
    /// Sizing target of the dynamic store count: the policy aims for
    /// `ceil(live_pairs / target_pairs_per_shard)` active stores (within
    /// `[min_active_shards, pool]`), so per-store maps stay small enough
    /// to be cache-resident while the pool absorbs growth under the
    /// tracked-pair cap.
    pub target_pairs_per_shard: usize,
    /// Load-skew trigger: rebalance when `max_store_load / mean_load`
    /// over the active stores reaches this ratio (≥ 1.0).
    pub min_skew: f64,
    /// Cap-pressure trigger: once `live_pairs ≥ cap_pressure ·
    /// max_tracked_pairs`, even mild skew (> [`CAP_PRESSURE_MIN_SKEW`])
    /// triggers — near the cap every store is at its densest and
    /// imbalance costs the most.
    pub cap_pressure: f64,
    /// Below this many live pairs the policy stays quiet (rebalancing a
    /// tiny registry is churn for nothing).
    pub min_tracked_pairs: usize,
    /// Minimum ticks between rebalance *attempts* (an attempt scans all
    /// pair keys to compute per-slot loads, so attempts are spaced even
    /// when they end up migrating nothing).
    pub cooldown_ticks: u64,
    /// Floor of the dynamic store count. `0` = resolve automatically:
    /// the whole pool when tick close fans out in parallel (shrinking
    /// would idle workers), `1` when close is serial (consolidation buys
    /// cache locality).
    pub min_active_shards: usize,
}

/// Which execution path the tick close uses to score tracked pairs.
///
/// A pure execution knob: the batched path runs the same per-pair
/// arithmetic in the same order as the scalar walk, just tiled
/// [`LANES`]-wide across pairs, so rankings are **byte-identical** in
/// either mode (pinned by `tests/stage_parity.rs` and the batch-equality
/// property suite in `enblogue-stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScoringMode {
    /// Lane-tiled batch kernels over gathered history tiles — the
    /// default; see [`ShardedPairRegistry::set_scoring`].
    #[default]
    Batched,
    /// The per-pair reference walk through `ShiftScorer::score_view`.
    Scalar,
}

impl ScoringMode {
    /// Short identifier for benchmark output.
    pub const fn name(self) -> &'static str {
        match self {
            ScoringMode::Batched => "batched",
            ScoringMode::Scalar => "scalar",
        }
    }
}

/// Below this many live pairs a requested parallel close runs serially.
///
/// Spawning per-store close workers costs more than the walk they would
/// parallelise on a small registry (the BENCH_close.json 1k-pair rows:
/// fanned-out closes ran ~30% *slower* than one store). The threshold is
/// deliberately coarse — at 4096 pairs a serial close is tens of
/// microseconds, far below a thread spawn's worth of work per store. A
/// pure execution knob: demotion changes scheduling, never results.
pub const SERIAL_CLOSE_MAX_PAIRS: usize = 4096;

/// Skew ratio above which the cap-pressure trigger fires (see
/// [`RebalanceConfig::cap_pressure`]).
pub const CAP_PRESSURE_MIN_SKEW: f64 = 1.05;

/// Relative weight of one tracked pair against one window observation in
/// the load model. A tracked pair costs a correlation + prediction +
/// decayed-max update every tick close; an observation costs two hash-map
/// operations at ingest. Measured on the `perf_rebalance` workload the
/// ratio is ≈ 2.7 (≈ 160 ns per pair update vs ≈ 60 ns per observation);
/// 3 is that measurement rounded, not a tuning surface.
pub const PAIR_LOAD_WEIGHT: u64 = 3;

/// Minimum relative improvement of the max store load a reassignment must
/// deliver to be adopted (5%): LPT from scratch rarely reproduces the
/// incumbent assignment exactly, and migrating for a sub-noise gain is
/// pure churn.
const MIN_IMPROVEMENT_NUM: u64 = 19;
const MIN_IMPROVEMENT_DEN: u64 = 20;

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            enabled: true,
            slots_per_shard: DEFAULT_SLOTS_PER_SHARD,
            target_pairs_per_shard: 8192,
            min_skew: 1.25,
            cap_pressure: 0.8,
            min_tracked_pairs: 4096,
            cooldown_ticks: 4,
            min_active_shards: 0,
        }
    }
}

impl RebalanceConfig {
    /// The disabled policy: classic static hash sharding.
    pub fn disabled() -> Self {
        RebalanceConfig { enabled: false, ..RebalanceConfig::default() }
    }

    /// Resolves the automatic `min_active_shards = 0` against the pool
    /// size and the host's close mode.
    pub fn resolved(mut self, pool: usize, parallel_close: bool) -> Self {
        if self.min_active_shards == 0 {
            self.min_active_shards = if parallel_close { pool } else { 1 };
        }
        self.min_active_shards = self.min_active_shards.min(pool);
        self
    }
}

/// Load and rebalancing metrics of a [`ShardedPairRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryStats {
    /// Size of the shard-store pool.
    pub shards: usize,
    /// Stores the current routing epoch actually targets.
    pub active_shards: usize,
    /// Currently tracked pairs.
    pub tracked_pairs: usize,
    /// Live pairs per store (index = store).
    pub per_shard_pairs: Vec<usize>,
    /// Decayed window observations per store (index = store).
    pub per_shard_obs: Vec<u64>,
    /// `max / mean` of the per-store load (pairs weighted against
    /// observations) over the *active* stores; 1.0 = perfectly balanced.
    pub skew: f64,
    /// Version of the routing table (0 = the uniform table).
    pub routing_epoch: u64,
    /// Rebalances applied (migrations that actually moved ownership).
    pub rebalances: u64,
    /// Pair states moved between stores across all rebalances.
    pub migrated_pairs: u64,
    /// Pairs ever discovered.
    pub discovered: u64,
    /// Pairs ever evicted.
    pub evicted: u64,
    /// Capacity-growth events observed in close-path scratch buffers
    /// (slab sorted views, the cap-eviction scratch). Zero once warm: the
    /// steady-state tick close is allocation-free (pinned by
    /// `tests/close_allocs.rs` with a counting allocator).
    pub close_allocs: u64,
}

/// Summary of one ranked pair, enriched for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedPairInfo {
    /// The pair.
    pub pair: TagPair,
    /// Its current decayed score.
    pub score: f64,
    /// Newest correlation value.
    pub correlation: f64,
    /// Ticks under tracking.
    pub tracked_ticks: u64,
}

/// One hash shard of tracked-pair state.
///
/// A shard owns every tracked pair routed to it — slab-resident (see
/// [`crate::slab::PairSlab`]): keys, scores and support ticks in parallel
/// dense vectors, histories in one strided arena — plus the open-tick
/// co-occurrence candidates; its windowed co-occurrence counts live in the
/// registry's [`ShardedWindowedCounter`] under the same index.
pub struct PairShard {
    slab: PairSlab,
    /// Pairs that co-occurred in the open tick (discovery candidates).
    current: FxHashSet<u64>,
    /// Copy of the registry's scalar parameters (shards are handed to
    /// workers detached from the registry during fan-out).
    params: PairParams,
    /// Observations per routing slot (index = slot over the whole grid;
    /// only this store's slots accumulate). Decayed at each rebalance
    /// check so recent traffic dominates; the rebalancer's load signal.
    slot_obs: Vec<u64>,
    /// Reusable scratch of the batched close walk.
    tile: TileScratch,
    /// Close-walk latency histogram (`close.shard.ns{shard=i}`). Disabled
    /// until [`ShardedPairRegistry::attach_telemetry`] wires a live
    /// registry; lives on the shard so fan-out workers record into their
    /// own handle without sharing.
    close_ns: Histogram,
    discovered: u64,
    evicted: u64,
}

/// Per-shard scratch of the batched tick close (see
/// [`PairShard::close_batched`]): one [`LANES`]-wide tile of gathered
/// histories plus its per-lane metadata. Sized once at shard construction
/// — the lane buffer holds `history_len` full rows — and never grown, so
/// the steady-state close stays allocation-free (pinned by
/// `crates/core/tests/close_allocs.rs`).
struct TileScratch {
    /// Time-major gathered histories: lane `l`'s value at step `t` lives
    /// at `lanes[t * LANES + l]` (the layout `HistoryTile` reads).
    lanes: Vec<f64>,
    /// Slab slot of each lane.
    slots: [u32; LANES],
    /// Packed pair key of each lane.
    keys: [u64; LANES],
    /// Windowed co-occurrence count of each lane (bulk-fetched).
    counts: [u64; LANES],
    /// This tick's correlation value of each lane.
    corrs: [f64; LANES],
    /// Shift score of each lane (kernel output).
    scores: [f64; LANES],
    /// Decay-factor memo shared across a close's score updates: every
    /// live pair was last updated at the previous close, so all updates
    /// share one elapsed time — and one `exp` — per close.
    memo: DecayMemo,
}

impl TileScratch {
    fn new(history_len: usize) -> Self {
        TileScratch {
            lanes: vec![0.0; history_len * LANES],
            slots: [0; LANES],
            keys: [0; LANES],
            counts: [0; LANES],
            corrs: [0.0; LANES],
            scores: [0.0; LANES],
            memo: DecayMemo::new(),
        }
    }
}

impl PairShard {
    fn new(params: PairParams) -> Self {
        PairShard {
            slab: PairSlab::new(params.history_len),
            current: FxHashSet::default(),
            slot_obs: vec![0; if params.track_load { params.slots } else { 0 }],
            tile: TileScratch::new(params.history_len),
            close_ns: Histogram::disabled(),
            params,
            discovered: 0,
            evicted: 0,
        }
    }

    /// Records observation pressure on `slot` (no-op when load tracking
    /// is off — the counters only exist for the rebalancer).
    #[inline]
    fn note_observation(&mut self, slot: usize) {
        if self.params.track_load {
            self.slot_obs[slot] += 1;
        }
    }

    fn discover(&mut self, packed: u64, tick: Tick, backfill_zeros: usize) {
        if self.slab.insert_fresh(packed, tick, backfill_zeros, self.params.half_life_ms) {
            self.discovered += 1;
        }
    }

    /// The scoring update of one slab slot at tick close: the scorer reads
    /// the history ring **in place** (no per-pair copy), then the new
    /// correlation is pushed into the ring.
    fn update_slot(
        &mut self,
        slot: usize,
        correlation: f64,
        support: u64,
        tick: Tick,
        now: Timestamp,
        scorer: &ShiftScorer,
    ) -> f64 {
        // Scoring is gated on window support: measures like overlap or NPMI
        // saturate to 1.0 on a single co-occurrence of two rare tags, and
        // without the gate such one-off pairs would flood the ranking.
        // (The correlation still enters the history, so the pair's series
        // stays tick-aligned either way.)
        let shift = if support >= self.params.min_pair_support {
            let (older, newer) = self.slab.history_parts(slot);
            scorer
                .score_view(SeriesView::new(older, newer), correlation)
                .map(|(s, _)| s)
                .unwrap_or(0.0)
        } else {
            0.0
        };
        let score = self.slab.score_mut(slot).observe_max(now, shift);
        self.slab.push_history(slot, correlation);
        if support >= self.params.min_pair_support {
            self.slab.set_last_support(slot, tick);
        }
        score
    }

    fn update_pair(
        &mut self,
        packed: u64,
        correlation: f64,
        support: u64,
        tick: Tick,
        now: Timestamp,
        scorer: &ShiftScorer,
    ) -> f64 {
        let slot = self.slab.slot_of(packed).expect("update_pair on untracked pair");
        self.update_slot(slot, correlation, support, tick, now, scorer)
    }

    /// Sorted packed keys, freshly collected (snapshot/inspection paths —
    /// the close loop walks the slab's incrementally maintained view).
    fn sorted_keys(&self) -> Vec<u64> {
        self.slab.sorted_keys()
    }

    /// The batched tick-close walk: groups sorted slots into
    /// [`LANES`]-wide tiles of equal history length, gathers each tile's
    /// ring-resident histories into one rotation-normalised time-major
    /// buffer (one linear copy per lane), bulk-fetches the tile's
    /// windowed actuals, and scores all lanes through the lane-parallel
    /// kernels of `ShiftScorer::score_batch` — writing results straight
    /// back into the slab's dense score column.
    ///
    /// Bit-identical to running [`PairShard::update_slot`] over the same
    /// sorted walk: tiles group pairs but never mix their arithmetic
    /// (each lane runs the scalar operation order; the support gate, the
    /// noise floor and the decayed-max update are applied per lane
    /// exactly as the scalar path applies them per pair). Tiling is an
    /// execution detail, invisible in rankings.
    fn close_batched<C>(
        &mut self,
        counter: &WindowedCounter<u64>,
        tick: Tick,
        now: Timestamp,
        scorer: &ShiftScorer,
        correlate: &C,
    ) where
        C: Fn(TagPair, u64) -> f64 + Sync,
    {
        let PairShard { slab, tile, params, .. } = self;
        let total = slab.sorted_slots().len();
        let mut i = 0;
        while i < total {
            // Fill: consecutive sorted slots sharing one history length
            // (the time-major kernels need one uniform loop bound, and in
            // steady state every ring is full, so tiles run wide).
            let mut width = 0;
            let mut len = 0usize;
            while width < LANES && i < total {
                let slot = slab.sorted_slots()[i] as usize;
                let hist_len = slab.history_count(slot);
                if width == 0 {
                    len = hist_len;
                } else if hist_len != len {
                    break;
                }
                tile.slots[width] = slot as u32;
                tile.keys[width] = slab.key_at(slot);
                // Rotation-normalised gather: the ring's two runs land
                // oldest → newest in the lane, so kernels never see the
                // split point.
                let (older, newer) = slab.history_parts(slot);
                for (t, &v) in older.iter().chain(newer.iter()).enumerate() {
                    tile.lanes[t * LANES + width] = v;
                }
                width += 1;
                i += 1;
            }
            // One bulk probe for the tile's windowed actuals, then the
            // correlation values derived from them.
            counter.counts_for_keys(&tile.keys[..width], &mut tile.counts[..width]);
            for l in 0..width {
                tile.corrs[l] = correlate(TagPair::from_packed(tile.keys[l]), tile.counts[l]);
            }
            // Unused lanes keep stale (finite) history values; their
            // kernel outputs are computed and discarded. Zeroing the
            // actuals keeps the discarded arithmetic finite too.
            for l in width..LANES {
                tile.corrs[l] = 0.0;
            }
            let history = HistoryTile::new(&tile.lanes[..len * LANES], len);
            let scored = scorer.score_batch(history, &tile.corrs, &mut tile.scores);
            for l in 0..width {
                let slot = tile.slots[l] as usize;
                // The same support gate as the scalar walk: unsupported
                // pairs get a zero shift but still push their correlation
                // so the series stays tick-aligned.
                let supported = tile.counts[l] >= params.min_pair_support;
                let shift = if supported && scored { tile.scores[l] } else { 0.0 };
                slab.score_mut(slot).observe_max_memo(now, shift, &mut tile.memo);
                slab.push_history(slot, tile.corrs[l]);
                if supported {
                    slab.set_last_support(slot, tick);
                }
            }
        }
    }
}

/// Scalar tracking parameters shared by all shards.
#[derive(Debug, Clone, Copy)]
struct PairParams {
    history_len: usize,
    half_life_ms: u64,
    min_pair_support: u64,
    max_tracked_pairs: usize,
    /// Slot-grid size of the routing table (for per-slot load counters).
    slots: usize,
    /// Whether shards maintain per-slot observation counters (only when a
    /// rebalancer is attached).
    track_load: bool,
    /// Close-scoring execution path (see [`ScoringMode`]).
    scoring: ScoringMode,
}

/// The candidate-pair registry: discovery, scoring, eviction, ranking —
/// over a pool of hash shards behind a versioned routing table, with an
/// optional load-aware rebalancer.
pub struct ShardedPairRegistry {
    shards: Vec<PairShard>,
    /// Windowed per-pair co-occurrence counts, sharded alongside `shards`.
    counts: ShardedWindowedCounter<u64>,
    params: PairParams,
    /// The rebalance policy ([`RebalanceConfig::disabled`] = static).
    rebalance: RebalanceConfig,
    /// The live routing handle shared with partitioning workers.
    routing: SharedRouting,
    /// Cached snapshot of the current epoch — the registry is the only
    /// publisher, so this is always the handle's latest table and every
    /// routed access skips the lock.
    table: Arc<RoutingTable>,
    /// Tick of the last rebalance attempt (cooldown anchor).
    last_attempt: Option<Tick>,
    rebalances: u64,
    migrated_pairs: u64,
    /// Reusable `(score, key)` buffer of the cap-eviction pass (retained
    /// across closes so a cap-bound steady state allocates nothing).
    cap_scratch: Vec<(f64, u64)>,
    /// Capacity-growth events in the registry's own close-path buffers
    /// (shards count theirs in the slab).
    close_allocs: u64,
    /// Operational event journal (evictions, rebalances). Disabled until
    /// [`ShardedPairRegistry::attach_telemetry`].
    journal: Journal,
}

impl ShardedPairRegistry {
    /// A statically sharded registry (`shards` stores, uniform routing,
    /// no rebalancer) whose correlation histories hold `history_len`
    /// ticks.
    ///
    /// # Panics
    /// Panics if `shards` is zero or `history_len < 2` (predictors need at
    /// least two history slots).
    pub fn new(
        shards: usize,
        history_len: usize,
        half_life_ms: u64,
        min_pair_support: u64,
        max_tracked_pairs: usize,
    ) -> Self {
        ShardedPairRegistry::with_rebalance(
            shards,
            history_len,
            half_life_ms,
            min_pair_support,
            max_tracked_pairs,
            RebalanceConfig::disabled(),
        )
    }

    /// [`ShardedPairRegistry::new`] with a rebalance policy attached. The
    /// pool holds `shards` stores; with rebalancing enabled the policy
    /// decides how many of them the routing table actually targets.
    ///
    /// An automatic `min_active_shards` of 0 resolves to the *serial*
    /// floor of 1 here — the registry cannot know how the host closes
    /// ticks. Hosts that fan the close out in parallel should pre-resolve
    /// the policy with [`RebalanceConfig::resolved`] (the engine's
    /// `PipelineState` does, against its `parallel_close` setting), or
    /// the policy may consolidate stores under their workers.
    ///
    /// # Panics
    /// Panics if `shards` is zero, `history_len < 2`, or the policy's
    /// `slots_per_shard` is zero.
    pub fn with_rebalance(
        shards: usize,
        history_len: usize,
        half_life_ms: u64,
        min_pair_support: u64,
        max_tracked_pairs: usize,
        rebalance: RebalanceConfig,
    ) -> Self {
        assert!(shards > 0, "shard count must be positive");
        assert!(history_len >= 2, "predictors need at least two history slots");
        assert!(rebalance.slots_per_shard > 0, "need at least one slot per shard");
        let rebalance = rebalance.resolved(shards, false);
        let table = RoutingTable::uniform(shards, shards * rebalance.slots_per_shard);
        let params = PairParams {
            history_len,
            half_life_ms,
            min_pair_support,
            max_tracked_pairs,
            slots: table.slot_count(),
            // A 1-store pool can never rebalance, so don't pay the
            // per-observation accounting there (the policy early-returns
            // before ever reading or decaying the counters).
            track_load: rebalance.enabled && shards > 1,
            scoring: ScoringMode::default(),
        };
        ShardedPairRegistry {
            shards: (0..shards).map(|_| PairShard::new(params)).collect(),
            counts: ShardedWindowedCounter::new(shards, history_len),
            params,
            rebalance,
            routing: SharedRouting::new(table.clone()),
            table: Arc::new(table),
            last_attempt: None,
            rebalances: 0,
            migrated_pairs: 0,
            cap_scratch: Vec::new(),
            close_allocs: 0,
            journal: Journal::disabled(),
        }
    }

    /// Wires the registry into a [`Telemetry`] hub: registers one
    /// `close.shard.ns{shard=i}` latency histogram per pool store (the
    /// per-shard close-walk timing recorded inside
    /// [`ShardedPairRegistry::score_all`]'s fan-out workers) and adopts
    /// the hub's event journal for eviction and rebalance events.
    ///
    /// Cold-path only — all handles are resolved here, once; the close
    /// path records through them without locks or allocation. Attaching a
    /// disabled hub yields inert handles, so the call is always safe.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        for (index, shard) in self.shards.iter_mut().enumerate() {
            shard.close_ns =
                telemetry.registry().histogram_labeled("close.shard.ns", "shard", index);
        }
        self.journal = telemetry.journal().clone();
    }

    /// Number of shard stores in the pool.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Selects the close-scoring execution path (constructors default to
    /// [`ScoringMode::Batched`]). A pure execution knob — rankings are
    /// byte-identical in either mode — so it can be flipped at any point,
    /// even between closes.
    pub fn set_scoring(&mut self, mode: ScoringMode) {
        self.params.scoring = mode;
        for shard in &mut self.shards {
            shard.params.scoring = mode;
        }
    }

    /// The active close-scoring mode.
    pub fn scoring(&self) -> ScoringMode {
        self.params.scoring
    }

    /// The live routing handle (hand this to partitioning workers; they
    /// snapshot it per batch and see every published rebalance).
    pub fn routing_handle(&self) -> SharedRouting {
        self.routing.clone()
    }

    /// The current routing epoch (see
    /// [`enblogue_ingest::partition::PartitionedBatch::routing_epoch`]).
    pub fn routing_epoch(&self) -> u64 {
        self.table.epoch()
    }

    #[inline]
    fn route(&self, packed: u64) -> usize {
        self.table.route(packed)
    }

    /// Number of currently tracked pairs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.slab.len()).sum()
    }

    /// Whether no pair is tracked.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.slab.is_empty())
    }

    /// Whether `pair` is currently tracked.
    pub fn is_tracked(&self, pair: TagPair) -> bool {
        let packed = pair.packed();
        self.shards[self.route(packed)].slab.contains(packed)
    }

    /// Total pairs ever discovered (metrics).
    pub fn discovered_total(&self) -> u64 {
        self.shards.iter().map(|s| s.discovered).sum()
    }

    /// Total pairs evicted (metrics).
    pub fn evicted_total(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted).sum()
    }

    /// Records one co-occurrence of `packed` in the open tick: counts it
    /// into the pair's windowed series and marks it a discovery candidate.
    pub fn observe_pair(&mut self, tick: Tick, packed: u64) {
        let slot = self.table.slot_of(packed);
        let shard = self.table.shard_of_slot(slot);
        self.counts.increment(shard, tick, packed);
        self.shards[shard].current.insert(packed);
        self.shards[shard].note_observation(slot);
    }

    /// Applies a shard-partitioned batch of co-occurrence observations,
    /// fanning out one scoped worker per shard when `parallel` is set.
    ///
    /// `buckets[i]` must hold exactly the observations routed to shard `i`
    /// (see `enblogue_ingest::partition`), in stream order — then each
    /// worker performs the same writes, in the same order, that a
    /// sequential [`ShardedPairRegistry::observe_pair`] loop would have
    /// sent to its shard, so results are identical in either mode.
    ///
    /// # Panics
    /// Panics if `buckets` does not match the shard count.
    pub fn ingest_partitioned(&mut self, buckets: &[Vec<(Tick, u64)>], parallel: bool) {
        /// One shard's slice of an ingest fan-out: its pair states, its
        /// windowed counter, and the observations routed to it.
        type ShardWork<'a> = (&'a mut PairShard, &'a mut WindowedCounter<u64>, &'a [(Tick, u64)]);
        assert_eq!(buckets.len(), self.shards.len(), "bucket count must match shard count");
        // Zip each pair shard with its windowed counter so one worker owns
        // both halves of a shard's state.
        let mut work: Vec<ShardWork<'_>> = self
            .shards
            .iter_mut()
            .zip(self.counts.shards_mut().iter_mut())
            .zip(buckets.iter())
            .map(|((shard, counter), bucket)| (shard, counter, bucket.as_slice()))
            .collect();
        let table = &self.table;
        fanout(&mut work, parallel, |_, (shard, counter, bucket)| {
            let track = shard.params.track_load;
            for &(tick, packed) in bucket.iter() {
                counter.increment(tick, packed);
                shard.current.insert(packed);
                if track {
                    shard.slot_obs[table.slot_of(packed)] += 1;
                }
            }
        });
    }

    /// The windowed co-occurrence count of `pair`.
    pub fn pair_count(&self, pair: TagPair) -> u64 {
        let packed = pair.packed();
        self.counts.count(self.route(packed), packed)
    }

    /// Aligns every shard's count window to the closing `tick` (gap ticks
    /// expire data).
    pub fn advance_to(&mut self, tick: Tick) {
        self.counts.advance_to(tick);
    }

    /// Starts tracking `pair` at `tick` if it is not yet tracked.
    ///
    /// `backfill_zeros` seeds the correlation history with that many 0.0
    /// values. A pair is discovered the moment it first co-occurs with a
    /// seed — but its correlation *was* zero in the window before that, and
    /// without the backfill a topic that appears fully formed (the demo's
    /// "SIGMOD Athens" stunt: two tags that only ever occur together) would
    /// present a flat history at 1.0 and never register as a shift. The
    /// engine caps the backfill by stream age so a cold start does not make
    /// every initial pair look emergent.
    pub fn discover(&mut self, pair: TagPair, tick: Tick, backfill_zeros: usize) {
        let packed = pair.packed();
        let shard = self.route(packed);
        self.shards[shard].discover(packed, tick, backfill_zeros);
    }

    /// Promotes this tick's co-occurrence candidates that contain a seed
    /// into tracked pairs, shard-parallel when `parallel` is set.
    pub fn discover_seeded(
        &mut self,
        seeds: &FxHashSet<TagId>,
        tick: Tick,
        backfill_zeros: usize,
        parallel: bool,
    ) {
        let parallel = self.close_parallel(parallel);
        fanout(&mut self.shards, parallel, |_, shard| {
            // Detach the candidate set so discovery can mutate the shard
            // while iterating it, then hand it back cleared — no
            // drain-into-a-fresh-`Vec` round-trip, and the set keeps its
            // capacity across ticks (`FxHashSet::default()` is
            // allocation-free).
            let mut current = std::mem::take(&mut shard.current);
            for &packed in &current {
                let pair = TagPair::from_packed(packed);
                if seeds.contains(&pair.lo()) || seeds.contains(&pair.hi()) {
                    shard.discover(packed, tick, backfill_zeros);
                }
            }
            current.clear();
            shard.current = current;
        });
    }

    /// Updates one tracked pair at a tick close.
    ///
    /// * `correlation` — the windowed correlation value of this tick,
    /// * `support` — windowed co-occurrence count (for eviction),
    /// * `now` — stream time of the tick end (drives score decay).
    ///
    /// Returns the new decayed-max score. The scorer sees the history
    /// *before* this tick's value; afterwards the value is appended.
    pub fn update_pair(
        &mut self,
        pair: TagPair,
        correlation: f64,
        support: u64,
        tick: Tick,
        now: Timestamp,
        scorer: &ShiftScorer,
    ) -> f64 {
        let packed = pair.packed();
        let shard = self.route(packed);
        self.shards[shard].update_pair(packed, correlation, support, tick, now, scorer)
    }

    /// Runs the correlation + shift-scoring update over every tracked
    /// pair, shard-parallel when `parallel` is set.
    ///
    /// `correlate` maps `(pair, windowed co-occurrence count)` to this
    /// tick's correlation value; it must be a pure function of its inputs
    /// and shared immutable state (it is called concurrently from shard
    /// workers). Per-shard iteration is in sorted key order, and pairs are
    /// independent, so the outcome is identical for any shard count and
    /// either execution mode.
    pub fn score_all<C>(
        &mut self,
        tick: Tick,
        now: Timestamp,
        scorer: &ShiftScorer,
        parallel: bool,
        correlate: C,
    ) where
        C: Fn(TagPair, u64) -> f64 + Sync,
    {
        let parallel = self.close_parallel(parallel);
        let counts = &self.counts;
        let correlate = &correlate;
        fanout(&mut self.shards, parallel, |index, shard| {
            // Each worker times its own walk into its shard's handle —
            // no cross-shard sharing, and a single branch when disabled.
            let started = shard.close_ns.enabled().then(std::time::Instant::now);
            // Repair the sorted view only if discovery/eviction changed
            // membership since the last close; the walk itself is linear
            // over dense slab columns.
            shard.slab.refresh_sorted();
            match shard.params.scoring {
                // The default: lane-tiled kernels over gathered tiles.
                ScoringMode::Batched => {
                    shard.close_batched(&counts.shards()[index], tick, now, scorer, correlate);
                }
                // The reference: per-pair walk, the scorer reading each
                // history ring in place.
                ScoringMode::Scalar => {
                    for i in 0..shard.slab.sorted_slots().len() {
                        let slot = shard.slab.sorted_slots()[i] as usize;
                        let packed = shard.slab.key_at(slot);
                        let pair = TagPair::from_packed(packed);
                        let ab = counts.count(index, packed);
                        let correlation = correlate(pair, ab);
                        shard.update_slot(slot, correlation, ab, tick, now, scorer);
                    }
                }
            }
            if let Some(started) = started {
                shard.close_ns.record_elapsed(started);
            }
        });
    }

    /// Demotes a requested parallel close to serial below
    /// [`SERIAL_CLOSE_MAX_PAIRS`] live pairs — per-store workers cost
    /// more than they parallelise on a small registry. Execution only;
    /// results are identical either way.
    fn close_parallel(&self, requested: bool) -> bool {
        requested && self.len() >= SERIAL_CLOSE_MAX_PAIRS
    }

    /// Evicts pairs without support for a full history window (per shard,
    /// optionally parallel) and enforces the global tracked-pair cap
    /// (lowest current scores go first). Returns the number evicted.
    pub fn evict(&mut self, tick: Tick, now: Timestamp) -> usize {
        self.evict_parallel(tick, now, false)
    }

    /// [`ShardedPairRegistry::evict`] with explicit shard fan-out control.
    pub fn evict_parallel(&mut self, tick: Tick, now: Timestamp, parallel: bool) -> usize {
        let parallel = self.close_parallel(parallel);
        let evicted_before = self.evicted_total();
        let horizon = self.params.history_len as u64;
        fanout(&mut self.shards, parallel, |_, shard| {
            for slot in 0..shard.slab.slot_bound() {
                if shard.slab.is_live(slot)
                    && tick.since(shard.slab.last_support_at(slot)) >= horizon
                {
                    shard.slab.remove_slot(slot);
                    shard.evicted += 1;
                }
            }
        });

        // The cap is a global memory bound, so it cannot be enforced
        // shard-locally: collect (score, key) across shards and drop the
        // globally weakest — the same order the unsharded registry used.
        let live = self.len();
        if live > self.params.max_tracked_pairs {
            let excess = live - self.params.max_tracked_pairs;
            if live > self.cap_scratch.capacity() {
                self.close_allocs += 1;
            }
            let scored = &mut self.cap_scratch;
            scored.clear();
            for shard in &self.shards {
                scored.extend(shard.slab.live_slots().map(|slot| {
                    (shard.slab.score_at(slot).value_at(now), shard.slab.key_at(slot))
                }));
            }
            // The comparator is total ((score, key), keys unique), so
            // selecting the n-th smallest partitions off exactly the set a
            // full sort would have put first — in O(live) instead of
            // O(live log live), which matters when the cap binds every
            // tick.
            let cmp = |a: &(f64, u64), b: &(f64, u64)| {
                a.0.partial_cmp(&b.0).expect("finite scores").then(a.1.cmp(&b.1))
            };
            scored.select_nth_unstable_by(excess - 1, cmp);
            for i in 0..excess {
                let packed = self.cap_scratch[i].1;
                let shard = self.route(packed);
                self.shards[shard].slab.remove(packed);
                self.shards[shard].evicted += 1;
            }
        }
        let evicted = (self.evicted_total() - evicted_before) as usize;
        if evicted > 0 {
            self.journal.record(EventKind::Eviction, tick.0, evicted as u64, self.len() as u64);
        }
        evicted
    }

    /// Runs the tick-aligned rebalance policy; call once per tick close,
    /// after scoring and eviction (the decision should see post-eviction
    /// populations). Returns the number of pair states migrated (0 when
    /// the policy is disabled, cooling down, or satisfied).
    ///
    /// The policy, in order:
    ///
    /// 1. **Dynamic store count** — aim for `ceil(live /
    ///    target_pairs_per_shard)` active stores within
    ///    `[min_active_shards, pool]`; grow eagerly, shrink only past a
    ///    2× hysteresis band so the count doesn't flap at a boundary.
    /// 2. **Skew** — among the active stores, if `max/mean` load (window
    ///    observations + [`PAIR_LOAD_WEIGHT`]·pairs) reaches `min_skew` —
    ///    or [`CAP_PRESSURE_MIN_SKEW`] once the tracked-pair cap is
    ///    `cap_pressure` full — recompute the slot assignment.
    /// 3. **Assignment** — longest-processing-time greedy over per-slot
    ///    loads (deterministic: slots by descending load then index,
    ///    stores by ascending load then index). Adopted only if it trims
    ///    the max store load by ≥ 5% (or the store count changed), then
    ///    applied by [`ShardedPairRegistry::migrate_to`].
    pub fn maybe_rebalance(&mut self, tick: Tick) -> usize {
        if !self.rebalance.enabled || self.shards.len() < 2 {
            return 0;
        }
        let migrated = self.consider_rebalance(tick);
        if migrated > 0 {
            self.journal.record(EventKind::Rebalance, tick.0, migrated as u64, self.table.epoch());
        }
        // Halve the per-slot observation pressure each close: the load
        // signal is an exponential moving sum with a one-tick half-life,
        // so bursts register fast and fade fast.
        for shard in &mut self.shards {
            for obs in &mut shard.slot_obs {
                *obs >>= 1;
            }
        }
        migrated
    }

    /// The decision half of [`ShardedPairRegistry::maybe_rebalance`].
    fn consider_rebalance(&mut self, tick: Tick) -> usize {
        let cfg = self.rebalance;
        let live = self.len();
        if live < cfg.min_tracked_pairs {
            return 0;
        }
        if let Some(last) = self.last_attempt {
            if tick.since(last) < cfg.cooldown_ticks {
                return 0;
            }
        }
        self.last_attempt = Some(tick);

        let (slot_load, slot_obs) = self.slot_loads();
        let pool = self.shards.len();
        let mut shard_load = vec![0u64; pool];
        for (slot, &load) in slot_load.iter().enumerate() {
            shard_load[self.table.shard_of_slot(slot)] += load;
        }
        let active_now = self.table.active_shards();

        // 1. Dynamic store count.
        let target =
            live.div_ceil(cfg.target_pairs_per_shard).clamp(cfg.min_active_shards.max(1), pool);
        let resize_to =
            if target > active_now || target * 2 <= active_now { target } else { active_now };
        let resized = resize_to != active_now;

        // 2. Skew over the active stores.
        let total: u64 = shard_load.iter().sum();
        let mean = total as f64 / active_now as f64;
        let max_load = shard_load.iter().copied().max().unwrap_or(0);
        let skew = max_load as f64 / mean.max(1e-9);
        let cap_pressed = live as f64 >= cfg.cap_pressure * self.params.max_tracked_pairs as f64;
        let skewed = skew >= cfg.min_skew || (cap_pressed && skew >= CAP_PRESSURE_MIN_SKEW);
        if !resized && !skewed {
            return 0;
        }

        // 3. Incremental refinement over the first `resize_to` stores:
        //    keep every slot where it is unless moving it shrinks the
        //    makespan, so migration volume is proportional to the
        //    imbalance, not to the population.
        let assignment = refine_assignment(self.table.assignment(), &slot_load, resize_to);
        if assignment == *self.table.assignment() {
            // Refinement found nothing worth moving (e.g. a resize whose
            // only loaded slots cannot profitably relocate) — publishing
            // an identical epoch would be pure churn for every in-flight
            // batch.
            return 0;
        }
        if !resized {
            let mut new_loads = vec![0u64; resize_to];
            for (slot, &store) in assignment.iter().enumerate() {
                new_loads[store as usize] += slot_load[slot];
            }
            let new_max = new_loads.into_iter().max().unwrap_or(0);
            if new_max * MIN_IMPROVEMENT_DEN > max_load * MIN_IMPROVEMENT_NUM {
                return 0; // < 5% better: not worth the migration
            }
        }
        self.apply_assignment(assignment, &slot_obs)
    }

    /// Per-slot `(weighted load, raw observation)` vectors over the whole
    /// grid: decayed window observations plus
    /// [`PAIR_LOAD_WEIGHT`]-weighted live pairs.
    fn slot_loads(&self) -> (Vec<u64>, Vec<u64>) {
        let slots = self.table.slot_count();
        let mut obs = vec![0u64; slots];
        for shard in &self.shards {
            for (slot, &count) in shard.slot_obs.iter().enumerate() {
                obs[slot] += count;
            }
        }
        let mut load = obs.clone();
        for shard in &self.shards {
            for slot in shard.slab.live_slots() {
                load[self.table.slot_of(shard.slab.key_at(slot))] += PAIR_LOAD_WEIGHT;
            }
        }
        (load, obs)
    }

    /// Re-targets the slot grid to `assignment` and migrates every
    /// affected pair's tracked state and windowed counts to its new
    /// store, publishing the successor routing epoch. Returns the number
    /// of pair states moved.
    ///
    /// This is the migration primitive behind
    /// [`ShardedPairRegistry::maybe_rebalance`]; it is public as an
    /// operational/testing hook. State is preserved bit-for-bit, so
    /// rankings are unaffected by any migration schedule.
    ///
    /// # Panics
    /// Panics if the assignment does not match the slot grid or names a
    /// store outside the pool.
    pub fn migrate_to(&mut self, assignment: Vec<u16>) -> usize {
        let (_, slot_obs) = self.slot_loads();
        self.apply_assignment(assignment, &slot_obs)
    }

    /// [`ShardedPairRegistry::migrate_to`] with the per-slot observation
    /// totals already in hand (they move with their slots).
    fn apply_assignment(&mut self, assignment: Vec<u16>, slot_obs: &[u64]) -> usize {
        let new_table = self.table.reassigned(assignment);
        let pool = self.shards.len();
        type Moved = (u64, Option<PairState>, Option<KeyWindow>);
        let mut state_moves: Vec<Vec<Moved>> = (0..pool).map(|_| Vec::new()).collect();
        let mut current_moves: Vec<Vec<u64>> = (0..pool).map(|_| Vec::new()).collect();

        let mut donors = vec![false; pool];
        for (from, (shard, counter)) in
            self.shards.iter_mut().zip(self.counts.shards_mut().iter_mut()).enumerate()
        {
            // A re-targeted slot takes *everything* keyed into it: tracked
            // pair states, but also windowed counts of pairs that were
            // only ever observed (discovery may still promote them later,
            // and their window history must be intact when it does).
            let tracked = shard.slab.live_slots().map(|slot| shard.slab.key_at(slot));
            let mut moving: Vec<u64> = tracked
                .chain(counter.iter().map(|(packed, _)| packed))
                .filter(|&packed| new_table.route(packed) != from)
                .collect();
            moving.sort_unstable();
            moving.dedup();
            donors[from] = !moving.is_empty();
            for packed in moving {
                let state = shard.slab.extract(packed);
                let series = counter.extract_key(packed);
                state_moves[new_table.route(packed)].push((packed, state, series));
            }
            // Open-tick discovery candidates follow their keys (normally
            // empty at close time, but the hook may run mid-tick).
            let moving_current: Vec<u64> = shard
                .current
                .iter()
                .copied()
                .filter(|&packed| new_table.route(packed) != from)
                .collect();
            for packed in moving_current {
                shard.current.remove(&packed);
                current_moves[new_table.route(packed)].push(packed);
            }
        }

        let mut migrated = 0usize;
        for (to, items) in state_moves.into_iter().enumerate() {
            let counter = &mut self.counts.shards_mut()[to];
            let shard = &mut self.shards[to];
            for (packed, state, series) in items {
                if let Some(state) = state {
                    migrated += 1;
                    shard.slab.insert_state(packed, state);
                }
                if let Some(series) = series {
                    counter.merge_key(packed, &series);
                }
            }
        }
        for (to, keys) in current_moves.into_iter().enumerate() {
            self.shards[to].current.extend(keys);
        }

        // Donors keep the slots of their departed keys otherwise, and
        // every later close walks the slot bound, not the live count —
        // compact them so a migration's cost ends with the migration.
        for (index, was_donor) in donors.into_iter().enumerate() {
            if was_donor {
                self.shards[index].slab.shrink_to_fit();
                self.shards[index].current.shrink_to_fit();
                self.counts.shards_mut()[index].shrink_to_fit();
            }
        }

        // The observation pressure follows its slots to the new owners.
        if self.params.track_load {
            for shard in &mut self.shards {
                shard.slot_obs.iter_mut().for_each(|obs| *obs = 0);
            }
            for (slot, &obs) in slot_obs.iter().enumerate() {
                let owner = new_table.shard_of_slot(slot);
                self.shards[owner].slot_obs[slot] = obs;
            }
        }

        self.routing.publish(new_table.clone());
        self.table = Arc::new(new_table);
        self.rebalances += 1;
        self.migrated_pairs += migrated as u64;
        migrated
    }

    /// Load and rebalancing metrics (see [`RegistryStats`]).
    pub fn stats(&self) -> RegistryStats {
        let pool = self.shards.len();
        let mut per_shard_obs = vec![0u64; pool];
        for (index, shard) in self.shards.iter().enumerate() {
            per_shard_obs[index] = shard.slot_obs.iter().sum();
        }
        let per_shard_pairs: Vec<usize> =
            self.shards.iter().map(|shard| shard.slab.len()).collect();
        let active = self.table.active_shards();
        let loads: Vec<u64> = (0..pool)
            .map(|i| per_shard_obs[i] + PAIR_LOAD_WEIGHT * per_shard_pairs[i] as u64)
            .collect();
        let total: u64 = loads.iter().sum();
        let mean = total as f64 / active.max(1) as f64;
        let skew = if total == 0 {
            1.0
        } else {
            loads.iter().copied().max().unwrap_or(0) as f64 / mean.max(1e-9)
        };
        RegistryStats {
            shards: pool,
            active_shards: active,
            tracked_pairs: self.len(),
            per_shard_pairs,
            per_shard_obs,
            skew,
            routing_epoch: self.table.epoch(),
            rebalances: self.rebalances,
            migrated_pairs: self.migrated_pairs,
            discovered: self.discovered_total(),
            evicted: self.evicted_total(),
            close_allocs: self.close_allocs
                + self.shards.iter().map(|shard| shard.slab.close_allocs()).sum::<u64>(),
        }
    }

    /// The current top-k ranking by decayed score at `now`, merged across
    /// shards (identical for any shard count).
    pub fn ranking(&self, k: usize, now: Timestamp) -> Vec<(TagPair, f64)> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut topk: TopK<u64> = TopK::new(k);
        for shard in &self.shards {
            for slot in shard.slab.live_slots() {
                let score = shard.slab.score_at(slot).value_at(now);
                if score > 0.0 {
                    topk.offer(shard.slab.key_at(slot), score);
                }
            }
        }
        topk.into_sorted().into_iter().map(|r| (TagPair::from_packed(r.key), r.score)).collect()
    }

    /// Rich info for `pair`, if tracked.
    pub fn info(&self, pair: TagPair, tick: Tick, now: Timestamp) -> Option<TrackedPairInfo> {
        let packed = pair.packed();
        let shard = &self.shards[self.route(packed)];
        shard.slab.slot_of(packed).map(|slot| TrackedPairInfo {
            pair,
            score: shard.slab.score_at(slot).value_at(now),
            correlation: shard.slab.newest_history(slot).unwrap_or(0.0),
            tracked_ticks: tick.since(shard.slab.since_at(slot)),
        })
    }

    /// The correlation history of `pair` (oldest → newest), if tracked.
    pub fn history_of(&self, pair: TagPair) -> Option<Vec<f64>> {
        let packed = pair.packed();
        let shard = &self.shards[self.route(packed)];
        shard.slab.slot_of(packed).map(|slot| {
            let (older, newer) = shard.slab.history_parts(slot);
            older.iter().chain(newer).copied().collect()
        })
    }

    /// Exports the stat columns for the `ranked` pairs only into `out`
    /// (the [`crate::query::PublishDetail::Ranked`] serving payload):
    /// O(top-k) hash lookups plus a tiny sort, independent of the tracked
    /// population. Reuses `out`'s buffers — warm calls do not allocate.
    pub(crate) fn export_ranked_into(&self, ranked: &[(TagPair, f64)], out: &mut ViewData) {
        out.scratch.clear();
        for &(pair, _) in ranked {
            let packed = pair.packed();
            let shard = self.route(packed);
            if let Some(slot) = self.shards[shard].slab.slot_of(packed) {
                out.scratch.push((packed, shard as u32, slot as u32));
            }
        }
        self.fill_rows(out);
    }

    /// Exports the stat columns for **every** tracked pair into `out`
    /// (the [`crate::query::PublishDetail::Full`] serving payload): a
    /// full column copy, O(tracked pairs) time and memory.
    pub(crate) fn export_full_into(&self, out: &mut ViewData) {
        out.scratch.clear();
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            for slot in shard.slab.live_slots() {
                out.scratch.push((shard.slab.key_at(slot), shard_idx as u32, slot as u32));
            }
        }
        self.fill_rows(out);
    }

    /// Sorts the scratch triples by key and copies each row's columns.
    fn fill_rows(&self, out: &mut ViewData) {
        out.scratch.sort_unstable_by_key(|&(key, _, _)| key);
        out.clear_columns();
        let scratch = std::mem::take(&mut out.scratch);
        for &(key, shard, slot) in &scratch {
            let slab = &self.shards[shard as usize].slab;
            let slot = slot as usize;
            out.push_row(
                key,
                *slab.score_at(slot),
                slab.newest_history(slot).unwrap_or(0.0),
                slab.since_at(slot),
                slab.history_parts(slot),
            );
        }
        out.scratch = scratch;
        out.seal_rows();
    }

    /// Packed keys of all tracked pairs, globally sorted (deterministic
    /// iteration order for tests and inspection).
    pub fn tracked_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.slab.live_slots().map(|slot| s.slab.key_at(slot)))
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Serializes the registry's complete state — routing table + epoch,
    /// rebalancer accumulators, every shard's tracked-pair states, and the
    /// windowed counts *including observed-but-undiscovered keys* — into
    /// `w` (see [`crate::snapshot`] for the framing). Map contents are
    /// written in sorted key order so equal states produce equal bytes.
    pub(crate) fn encode_snapshot(&self, w: &mut SnapWriter) {
        let pool = self.shards.len();
        w.usize(pool);
        w.u64(self.table.epoch());
        w.usize(self.table.slot_count());
        for &store in self.table.assignment() {
            w.u16(store);
        }
        w.opt_tick(self.last_attempt);
        w.u64(self.rebalances);
        w.u64(self.migrated_pairs);
        for shard in &self.shards {
            w.u64(shard.discovered);
            w.u64(shard.evicted);
            w.usize(shard.slot_obs.len());
            for &obs in &shard.slot_obs {
                w.u64(obs);
            }
            let mut current: Vec<u64> = shard.current.iter().copied().collect();
            current.sort_unstable();
            w.usize(current.len());
            for packed in current {
                w.u64(packed);
            }
            w.usize(shard.slab.len());
            for packed in shard.sorted_keys() {
                let slot = shard.slab.slot_of(packed).expect("sorted keys are tracked");
                w.u64(packed);
                let (older, newer) = shard.slab.history_parts(slot);
                w.usize(older.len() + newer.len());
                for &value in older.iter().chain(newer) {
                    w.f64(value);
                }
                // `value_at(last_update)` reads the stored value with zero
                // elapsed decay — the raw field, bit-for-bit.
                let score = shard.slab.score_at(slot);
                w.f64(score.value_at(score.last_update()));
                w.timestamp(score.last_update());
                w.tick(shard.slab.last_support_at(slot));
                w.tick(shard.slab.since_at(slot));
            }
        }
        for counter in self.counts.shards() {
            w.opt_tick(counter.newest_tick());
            let per_tick = counter.per_tick_counts();
            w.usize(per_tick.len());
            for mut entries in per_tick {
                entries.sort_unstable_by_key(|&(key, _)| key);
                w.usize(entries.len());
                for (key, count) in entries {
                    w.u64(key);
                    w.u64(count);
                }
            }
        }
    }

    /// Rebuilds a registry from [`ShardedPairRegistry::encode_snapshot`]
    /// output. The scalar parameters and the (pre-resolved) rebalance
    /// policy come from the resuming configuration, which the caller has
    /// already fingerprint-matched against the snapshot; structural
    /// inconsistencies between the two still surface as typed errors,
    /// never panics.
    pub(crate) fn decode_snapshot(
        r: &mut SnapReader<'_>,
        shards: usize,
        history_len: usize,
        half_life_ms: u64,
        min_pair_support: u64,
        max_tracked_pairs: usize,
        rebalance: RebalanceConfig,
    ) -> Result<Self, EnBlogueError> {
        let pool = r.seq(1)?;
        if pool != shards {
            return Err(EnBlogueError::SnapshotConfigMismatch(format!(
                "snapshot has a pool of {pool} shard stores, configuration asks for {shards}"
            )));
        }
        let epoch = r.u64()?;
        let slots = r.seq(2)?;
        if slots != shards * rebalance.slots_per_shard {
            return Err(EnBlogueError::SnapshotConfigMismatch(format!(
                "snapshot routing grid has {slots} slots, configuration implies {}",
                shards * rebalance.slots_per_shard
            )));
        }
        let mut assignment = Vec::with_capacity(slots);
        for _ in 0..slots {
            let store = r.u16()?;
            if store as usize >= pool {
                return Err(corrupt(format!("slot assigned to store {store} outside the pool")));
            }
            assignment.push(store);
        }
        let table = RoutingTable::from_parts(pool, epoch, assignment);
        let last_attempt = r.opt_tick()?;
        let rebalances = r.u64()?;
        let migrated_pairs = r.u64()?;

        let params = PairParams {
            history_len,
            half_life_ms,
            min_pair_support,
            max_tracked_pairs,
            slots: table.slot_count(),
            track_load: rebalance.enabled && shards > 1,
            scoring: ScoringMode::default(),
        };
        let expected_obs = if params.track_load { params.slots } else { 0 };
        let mut stores = Vec::with_capacity(pool);
        for _ in 0..pool {
            let mut shard = PairShard::new(params);
            shard.discovered = r.u64()?;
            shard.evicted = r.u64()?;
            let obs_len = r.seq(8)?;
            if obs_len != expected_obs {
                return Err(corrupt(format!(
                    "shard carries {obs_len} slot-load counters, expected {expected_obs}"
                )));
            }
            for slot in 0..obs_len {
                shard.slot_obs[slot] = r.u64()?;
            }
            let current = r.seq(8)?;
            for _ in 0..current {
                shard.current.insert(r.u64()?);
            }
            let states = r.seq(8)?;
            for _ in 0..states {
                let packed = r.u64()?;
                let history_values = r.seq(8)?;
                if history_values > history_len {
                    return Err(corrupt(format!(
                        "pair history of {history_values} values exceeds the {history_len}-tick window"
                    )));
                }
                let mut history = RingBuffer::new(history_len);
                for _ in 0..history_values {
                    history.push(r.f64()?);
                }
                let score_value = r.f64()?;
                let score_updated = r.timestamp()?;
                let mut score = DecayValue::new(half_life_ms);
                score.set(score_updated, score_value);
                let last_support = r.tick()?;
                let since = r.tick()?;
                if !shard
                    .slab
                    .insert_state(packed, PairState { history, score, last_support, since })
                {
                    return Err(corrupt(format!("pair {packed:#x} serialized twice")));
                }
            }
            stores.push(shard);
        }

        let mut counters = Vec::with_capacity(pool);
        for _ in 0..pool {
            let newest = r.opt_tick()?;
            let ticks = r.seq(8)?;
            if ticks > history_len {
                return Err(corrupt(format!(
                    "counter holds {ticks} tick maps, window spans {history_len}"
                )));
            }
            if newest.is_none() && ticks > 0 {
                return Err(corrupt("tick maps without a newest tick"));
            }
            let mut per_tick = Vec::with_capacity(ticks);
            for _ in 0..ticks {
                let entries = r.seq(16)?;
                let mut map = Vec::with_capacity(entries);
                for _ in 0..entries {
                    let key = r.u64()?;
                    let count = r.u64()?;
                    map.push((key, count));
                }
                per_tick.push(map);
            }
            counters.push(WindowedCounter::from_per_tick_counts(history_len, newest, per_tick));
        }

        Ok(ShardedPairRegistry {
            shards: stores,
            counts: ShardedWindowedCounter::from_shards(counters),
            params,
            rebalance,
            routing: SharedRouting::new(table.clone()),
            table: Arc::new(table),
            last_attempt,
            rebalances,
            migrated_pairs,
            cap_scratch: Vec::new(),
            close_allocs: 0,
            journal: Journal::disabled(),
        })
    }

    /// Serializes the registry's complete state into a standalone byte
    /// payload — the same section the engine snapshot embeds (see
    /// [`crate::snapshot`] for the conventions), without the engine
    /// framing. An operational/testing seam: the slab-layout property
    /// tests round-trip registries mid-stream through it.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.encode_snapshot(&mut w);
        w.into_bytes()
    }

    /// Rebuilds a registry from [`ShardedPairRegistry::snapshot_bytes`]
    /// output under the same construction parameters.
    ///
    /// # Errors
    /// [`EnBlogueError::SnapshotCorrupt`] /
    /// [`EnBlogueError::SnapshotConfigMismatch`] exactly as the engine
    /// restore path surfaces them (truncation never panics).
    #[allow(clippy::too_many_arguments)]
    pub fn from_snapshot_bytes(
        bytes: &[u8],
        shards: usize,
        history_len: usize,
        half_life_ms: u64,
        min_pair_support: u64,
        max_tracked_pairs: usize,
        rebalance: RebalanceConfig,
    ) -> Result<Self, EnBlogueError> {
        let mut r = SnapReader::new(bytes);
        let registry = Self::decode_snapshot(
            &mut r,
            shards,
            history_len,
            half_life_ms,
            min_pair_support,
            max_tracked_pairs,
            rebalance,
        )?;
        r.finish()?;
        Ok(registry)
    }
}

/// Deterministic incremental rebalancing: starting from `current`, place
/// slots living on stores outside `0..stores` (after a resize) by
/// longest-processing-time greedy, then repeatedly move the heaviest
/// profitable slot from the most- to the least-loaded store until no move
/// shrinks the makespan.
///
/// Unlike LPT-from-scratch, a slot only moves when the move itself pays,
/// so migration volume is proportional to the *imbalance* (a handful of
/// hot slots after a burst), not to the whole tracked population.
/// Everything ties on (load, index), so the result is a pure function of
/// its inputs — part of the replay-determinism contract.
fn refine_assignment(current: &[u16], slot_load: &[u64], stores: usize) -> Vec<u16> {
    debug_assert!(stores >= 1 && stores <= u16::MAX as usize);
    let mut assignment = current.to_vec();
    let mut store_load = vec![0u64; stores];
    let mut homeless: Vec<usize> = Vec::new();
    for (slot, &store) in current.iter().enumerate() {
        if (store as usize) < stores {
            store_load[store as usize] += slot_load[slot];
        } else {
            homeless.push(slot);
        }
    }
    // Re-home slots of retired stores, heaviest first onto the lightest.
    homeless.sort_unstable_by(|&a, &b| slot_load[b].cmp(&slot_load[a]).then(a.cmp(&b)));
    for slot in homeless {
        let target = min_store(&store_load);
        assignment[slot] = target as u16;
        store_load[target] += slot_load[slot];
    }
    // Refinement: move the largest slot that strictly shrinks the
    // max-min gap, until none does. Bounded by the slot count — each
    // move strictly reduces the (max, -min) pair lexicographically.
    for _ in 0..assignment.len() {
        let from = max_store(&store_load);
        let to = min_store(&store_load);
        let gap = store_load[from] - store_load[to];
        let candidate = assignment
            .iter()
            .enumerate()
            .filter(|&(slot, &store)| store as usize == from && slot_load[slot] > 0)
            .filter(|&(slot, _)| slot_load[slot] < gap)
            .max_by_key(|&(slot, _)| (slot_load[slot], usize::MAX - slot));
        let Some((slot, _)) = candidate else { break };
        assignment[slot] = to as u16;
        store_load[from] -= slot_load[slot];
        store_load[to] += slot_load[slot];
    }
    assignment
}

/// Index of the least-loaded store (ties: lowest index).
fn min_store(store_load: &[u64]) -> usize {
    store_load
        .iter()
        .enumerate()
        .min_by_key(|&(index, &load)| (load, index))
        .expect("at least one store")
        .0
}

/// Index of the most-loaded store (ties: lowest index).
fn max_store(store_load: &[u64]) -> usize {
    store_load
        .iter()
        .enumerate()
        .max_by_key(|&(index, &load)| (load, usize::MAX - index))
        .expect("at least one store")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_stats::predict::PredictorKind;
    use enblogue_stats::shift::{ErrorNormalization, ShiftScorer};
    use enblogue_types::TagId;

    fn pair(a: u32, b: u32) -> TagPair {
        TagPair::new(TagId(a), TagId(b))
    }

    fn scorer() -> ShiftScorer {
        ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Absolute)
    }

    fn registry() -> ShardedPairRegistry {
        ShardedPairRegistry::new(1, 8, Timestamp::DAY, 1, 1000)
    }

    fn hour(h: u64) -> Timestamp {
        Timestamp::from_hours(h)
    }

    #[test]
    fn discovery_is_idempotent() {
        let mut r = registry();
        r.discover(pair(1, 2), Tick(0), 0);
        r.discover(pair(2, 1), Tick(5), 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.discovered_total(), 1);
        assert!(r.is_tracked(pair(1, 2)));
    }

    #[test]
    fn flat_correlation_scores_zero() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..8u64 {
            let score = r.update_pair(pair(1, 2), 0.2, 3, Tick(t), hour(t), &s);
            if t >= 1 {
                assert_eq!(score, 0.0, "flat series must not alarm at tick {t}");
            }
        }
    }

    #[test]
    fn jump_raises_score_then_decays() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..6u64 {
            r.update_pair(pair(1, 2), 0.1, 3, Tick(t), hour(t), &s);
        }
        let jumped = r.update_pair(pair(1, 2), 0.6, 10, Tick(6), hour(6), &s);
        assert!(jumped > 0.3, "jump must register: {jumped}");
        // Correlation stays high: no further *shift*, score decays (half-
        // life is one day here).
        let later = r.update_pair(pair(1, 2), 0.6, 10, Tick(30), hour(30), &s);
        assert!(later < jumped, "score must decay after the shift: {later} !< {jumped}");
        assert!(later > jumped * 0.4, "one day later roughly half remains: {later}");
    }

    #[test]
    fn decayed_max_keeps_past_peak_over_small_new_errors() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..6u64 {
            r.update_pair(pair(1, 2), 0.1, 3, Tick(t), hour(t), &s);
        }
        let peak = r.update_pair(pair(1, 2), 0.7, 10, Tick(6), hour(6), &s);
        // A tiny wobble an hour later must not displace the decayed peak.
        let next = r.update_pair(pair(1, 2), 0.71, 10, Tick(7), hour(7), &s);
        assert!(next > 0.9 * peak, "decayed peak must dominate: {next} vs {peak}");
    }

    #[test]
    fn eviction_after_support_loss() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        r.update_pair(pair(1, 2), 0.3, 5, Tick(0), hour(0), &s);
        // Ticks 1..8: no support (support < min = 1 is passed as 0).
        for t in 1..9u64 {
            r.update_pair(pair(1, 2), 0.0, 0, Tick(t), hour(t), &s);
        }
        let evicted = r.evict(Tick(9), hour(9));
        assert_eq!(evicted, 1);
        assert!(r.is_empty());
        assert_eq!(r.evicted_total(), 1);
    }

    #[test]
    fn supported_pairs_survive_eviction() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..20u64 {
            r.update_pair(pair(1, 2), 0.3, 5, Tick(t), hour(t), &s);
            assert_eq!(r.evict(Tick(t), hour(t)), 0);
        }
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn cap_evicts_lowest_scores() {
        let mut r = ShardedPairRegistry::new(1, 4, Timestamp::DAY, 1, 2);
        let s = scorer();
        for (i, p) in [pair(1, 2), pair(3, 4), pair(5, 6)].into_iter().enumerate() {
            r.discover(p, Tick(0), 0);
            // Give each pair a different shift magnitude via a jump from 0.
            r.update_pair(p, 0.0, 1, Tick(0), hour(0), &s);
            r.update_pair(p, 0.1 * (i as f64 + 1.0), 1, Tick(1), hour(1), &s);
        }
        assert_eq!(r.len(), 3);
        let evicted = r.evict(Tick(1), hour(1));
        assert_eq!(evicted, 1);
        assert!(!r.is_tracked(pair(1, 2)), "weakest score evicted");
        assert!(r.is_tracked(pair(5, 6)));
    }

    #[test]
    fn ranking_orders_by_decayed_score() {
        let mut r = registry();
        let s = scorer();
        for p in [pair(1, 2), pair(3, 4)] {
            r.discover(p, Tick(0), 0);
            for t in 0..4u64 {
                r.update_pair(p, 0.1, 3, Tick(t), hour(t), &s);
            }
        }
        // Pair (3,4) jumps harder.
        r.update_pair(pair(1, 2), 0.3, 3, Tick(4), hour(4), &s);
        r.update_pair(pair(3, 4), 0.8, 3, Tick(4), hour(4), &s);
        let ranking = r.ranking(10, hour(4));
        assert_eq!(ranking.len(), 2);
        assert_eq!(ranking[0].0, pair(3, 4));
        assert!(ranking[0].1 > ranking[1].1);
        // k = 1 truncates.
        assert_eq!(r.ranking(1, hour(4)).len(), 1);
    }

    #[test]
    fn zero_scores_are_not_ranked() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        r.update_pair(pair(1, 2), 0.2, 3, Tick(0), hour(0), &s);
        r.update_pair(pair(1, 2), 0.2, 3, Tick(1), hour(1), &s);
        assert!(r.ranking(5, hour(1)).is_empty(), "nothing emergent yet");
    }

    #[test]
    fn info_reports_current_state() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(3), 0);
        r.update_pair(pair(1, 2), 0.25, 3, Tick(3), hour(3), &s);
        let info = r.info(pair(1, 2), Tick(5), hour(5)).unwrap();
        assert_eq!(info.pair, pair(1, 2));
        assert_eq!(info.correlation, 0.25);
        assert_eq!(info.tracked_ticks, 2);
        assert!(r.info(pair(7, 8), Tick(5), hour(5)).is_none());
        assert_eq!(r.history_of(pair(1, 2)), Some(vec![0.25]));
    }

    /// Drives the full sharded close path (observe → discover → score →
    /// evict → rank) for one shard/parallelism configuration.
    fn sharded_run(shards: usize, parallel: bool) -> (Vec<u64>, Vec<(TagPair, f64)>, u64, u64) {
        let mut r = ShardedPairRegistry::new(shards, 6, Timestamp::DAY, 1, 100);
        let s = scorer();
        let seeds: FxHashSet<TagId> = (0..6u32).map(TagId).collect();
        for t in 0..10u64 {
            // A rotating set of co-occurring pairs; pair (0,1) jumps late.
            for a in 0..6u32 {
                for b in (a + 1)..6u32 {
                    let packed = pair(a, b).packed();
                    let active =
                        (a + b + t as u32).is_multiple_of(3) || (a == 0 && b == 1 && t >= 7);
                    if active {
                        r.observe_pair(Tick(t), packed);
                        r.observe_pair(Tick(t), packed);
                    }
                }
            }
            r.advance_to(Tick(t));
            r.discover_seeded(&seeds, Tick(t), t.min(5) as usize, parallel);
            r.score_all(Tick(t), hour(t), &s, parallel, |p, ab| {
                // A synthetic but deterministic correlation: co-occurrence
                // count scaled by the pair's identity.
                ab as f64 / (4.0 + (p.lo().0 + p.hi().0) as f64)
            });
            r.evict_parallel(Tick(t), hour(t), parallel);
        }
        (r.tracked_keys(), r.ranking(10, hour(9)), r.discovered_total(), r.evicted_total())
    }

    #[test]
    fn sharding_is_invisible_in_results() {
        let baseline = sharded_run(1, false);
        for shards in [2usize, 4, 16] {
            assert_eq!(sharded_run(shards, false), baseline, "{shards} shards, serial");
            assert_eq!(sharded_run(shards, true), baseline, "{shards} shards, parallel");
        }
        assert_eq!(sharded_run(1, true), baseline, "parallel flag alone");
        assert!(!baseline.0.is_empty(), "the workload must actually track pairs");
        assert!(!baseline.1.is_empty(), "the workload must actually rank pairs");
    }

    #[test]
    fn shards_partition_the_key_space() {
        let mut r = ShardedPairRegistry::new(4, 4, Timestamp::DAY, 1, 1000);
        for a in 0..20u32 {
            r.discover(pair(a, a + 100), Tick(0), 0);
        }
        assert_eq!(r.len(), 20);
        assert_eq!(r.shard_count(), 4);
        assert_eq!(r.tracked_keys().len(), 20, "every pair lands in exactly one shard");
        for a in 0..20u32 {
            assert!(r.is_tracked(pair(a, a + 100)), "routed lookup finds pair {a}");
        }
    }

    #[test]
    fn ingest_partitioned_matches_observe_pair() {
        let shards = 4usize;
        let observations: Vec<(Tick, u64)> = (0..60u64)
            .map(|i| (Tick(i / 20), pair((i % 7) as u32, (i % 5) as u32 + 10).packed()))
            .collect();
        let run = |partitioned: bool, parallel: bool| {
            let mut r = ShardedPairRegistry::new(shards, 6, Timestamp::DAY, 1, 1000);
            if partitioned {
                let table = r.routing_handle().snapshot();
                let mut buckets: Vec<Vec<(Tick, u64)>> = vec![Vec::new(); shards];
                for &(tick, packed) in &observations {
                    buckets[table.route(packed)].push((tick, packed));
                }
                r.ingest_partitioned(&buckets, parallel);
            } else {
                for &(tick, packed) in &observations {
                    r.observe_pair(tick, packed);
                }
            }
            // Promote everything so the counted state becomes observable.
            let seeds: FxHashSet<TagId> = (0..20u32).map(TagId).collect();
            r.discover_seeded(&seeds, Tick(2), 0, false);
            let counts: Vec<u64> =
                r.tracked_keys().iter().map(|&k| r.pair_count(TagPair::from_packed(k))).collect();
            (r.tracked_keys(), counts)
        };
        let sequential = run(false, false);
        assert!(!sequential.0.is_empty());
        assert_eq!(run(true, false), sequential, "partitioned serial");
        assert_eq!(run(true, true), sequential, "partitioned shard-parallel");
    }

    #[test]
    #[should_panic(expected = "bucket count")]
    fn ingest_partitioned_rejects_wrong_bucket_count() {
        let mut r = ShardedPairRegistry::new(4, 4, Timestamp::DAY, 1, 1000);
        let buckets: Vec<Vec<(Tick, u64)>> = vec![Vec::new(); 3];
        r.ingest_partitioned(&buckets, false);
    }

    /// A rebalance policy that reacts to everything immediately (for
    /// deterministic unit workloads far below the production thresholds).
    fn eager_rebalance() -> RebalanceConfig {
        RebalanceConfig {
            enabled: true,
            slots_per_shard: 4,
            target_pairs_per_shard: 8,
            min_skew: 1.01,
            cap_pressure: 0.5,
            min_tracked_pairs: 1,
            cooldown_ticks: 0,
            min_active_shards: 1,
        }
    }

    #[test]
    fn migrate_to_preserves_states_counts_and_rankings() {
        let build = || {
            let mut r = ShardedPairRegistry::with_rebalance(
                4,
                6,
                Timestamp::DAY,
                1,
                1000,
                eager_rebalance(),
            );
            let s = scorer();
            for a in 0..12u32 {
                let p = pair(a, a + 50);
                for t in 0..4u64 {
                    r.observe_pair(Tick(t), p.packed());
                }
                r.discover(p, Tick(0), 0);
                r.update_pair(p, 0.0, 2, Tick(0), hour(0), &s);
                r.update_pair(p, 0.1 * (a as f64 + 1.0), 2, Tick(1), hour(1), &s);
            }
            r.advance_to(Tick(3));
            r
        };
        let mut migrated = build();
        let reference = build();

        // Collapse everything onto store 3, then re-spread.
        let slots = migrated.routing_handle().snapshot().slot_count();
        let moved = migrated.migrate_to(vec![3; slots]);
        assert!(moved > 0, "keys actually moved");
        assert_eq!(migrated.routing_epoch(), 1);
        assert_eq!(migrated.stats().active_shards, 1);
        let respread: Vec<u16> = (0..slots).map(|slot| (slot % 4) as u16).collect();
        migrated.migrate_to(respread);
        assert_eq!(migrated.routing_epoch(), 2);
        assert_eq!(migrated.stats().active_shards, 4);

        // Every observable is bit-identical to the never-migrated registry.
        assert_eq!(migrated.tracked_keys(), reference.tracked_keys());
        assert_eq!(migrated.ranking(20, hour(1)), reference.ranking(20, hour(1)));
        for &key in &reference.tracked_keys() {
            let p = TagPair::from_packed(key);
            assert_eq!(migrated.pair_count(p), reference.pair_count(p), "counts of {p}");
            assert_eq!(migrated.history_of(p), reference.history_of(p), "history of {p}");
            assert_eq!(
                migrated.info(p, Tick(2), hour(2)),
                reference.info(p, Tick(2), hour(2)),
                "info of {p}"
            );
        }
        assert!(migrated.stats().migrated_pairs >= moved as u64);
        assert_eq!(migrated.stats().rebalances, 2);
    }

    #[test]
    fn maybe_rebalance_consolidates_a_small_serial_registry() {
        // 4-store pool, serial floor of 1, tiny sizing target ⇒ the
        // policy shrinks the active store count to fit the population.
        let mut r =
            ShardedPairRegistry::with_rebalance(4, 6, Timestamp::DAY, 1, 1000, eager_rebalance());
        let s = scorer();
        for a in 0..6u32 {
            let p = pair(a, a + 10);
            r.observe_pair(Tick(0), p.packed());
            r.discover(p, Tick(0), 0);
            r.update_pair(p, 0.2, 1, Tick(0), hour(0), &s);
        }
        assert_eq!(r.stats().active_shards, 4, "uniform table before the first decision");
        let migrated = r.maybe_rebalance(Tick(0));
        assert!(migrated > 0, "6 pairs at a target of 8 per store fit one store");
        let stats = r.stats();
        assert_eq!(stats.active_shards, 1);
        assert_eq!(stats.rebalances, 1);
        assert!(stats.routing_epoch >= 1);
        assert_eq!(r.len(), 6, "no pair lost in the move");
    }

    #[test]
    fn maybe_rebalance_grows_with_the_population() {
        let mut r =
            ShardedPairRegistry::with_rebalance(4, 6, Timestamp::DAY, 1, 10_000, eager_rebalance());
        let s = scorer();
        // Start small → consolidates; then grow past several store
        // targets → the policy expands again.
        for a in 0..4u32 {
            let p = pair(a, a + 1000);
            r.discover(p, Tick(0), 0);
            r.update_pair(p, 0.2, 1, Tick(0), hour(0), &s);
        }
        r.maybe_rebalance(Tick(0));
        assert_eq!(r.stats().active_shards, 1);
        for a in 4..40u32 {
            let p = pair(a, a + 1000);
            r.discover(p, Tick(1), 0);
            r.update_pair(p, 0.2, 1, Tick(1), hour(1), &s);
        }
        r.maybe_rebalance(Tick(1));
        let stats = r.stats();
        assert_eq!(stats.active_shards, 4, "40 pairs / target 8 wants 5, clamped to the pool");
        assert_eq!(stats.tracked_pairs, 40);
        let spread = stats.per_shard_pairs.iter().filter(|&&n| n > 0).count();
        assert_eq!(spread, 4, "pairs actually spread over the grown stores");
    }

    #[test]
    fn skewed_observation_load_triggers_a_respread() {
        // Two stores; drive all observation pressure onto the slots of
        // one store while pairs stay balanced. The skew trigger must
        // re-spread the hot slots.
        let mut r = ShardedPairRegistry::with_rebalance(
            2,
            6,
            Timestamp::DAY,
            1,
            1000,
            RebalanceConfig {
                target_pairs_per_shard: 2, // keep both stores active
                ..eager_rebalance()
            },
        );
        let s = scorer();
        let table = r.routing_handle().snapshot();
        // Track a balanced set of pairs.
        for a in 0..8u32 {
            let p = pair(a, a + 100);
            r.discover(p, Tick(0), 0);
            r.update_pair(p, 0.2, 1, Tick(0), hour(0), &s);
        }
        // Hammer observations whose slots currently route to store 0.
        let mut hot = Vec::new();
        for a in 0..200u32 {
            let packed = pair(a, a + 5000).packed();
            if table.route(packed) == 0 {
                hot.push(packed);
            }
        }
        for _ in 0..50 {
            for &packed in hot.iter().take(8) {
                r.observe_pair(Tick(0), packed);
            }
        }
        let skew_before = r.stats().skew;
        assert!(skew_before > 1.2, "setup must actually skew store 0: {skew_before}");
        let migrated = r.maybe_rebalance(Tick(0));
        assert!(migrated > 0 || r.stats().rebalances > 0, "hot slots re-spread");
        assert!(r.stats().skew < skew_before, "skew reduced: {}", r.stats().skew);
    }

    #[test]
    fn disabled_rebalancer_keeps_the_uniform_table() {
        let mut r = ShardedPairRegistry::new(4, 6, Timestamp::DAY, 1, 10);
        let s = scorer();
        for a in 0..30u32 {
            let p = pair(a, a + 10);
            r.observe_pair(Tick(0), p.packed());
            r.discover(p, Tick(0), 0);
            r.update_pair(p, 0.2, 1, Tick(0), hour(0), &s);
        }
        assert_eq!(r.maybe_rebalance(Tick(0)), 0);
        let stats = r.stats();
        assert_eq!(stats.routing_epoch, 0);
        assert_eq!(stats.rebalances, 0);
        assert_eq!(stats.active_shards, 4);
        assert_eq!(stats.per_shard_obs, vec![0; 4], "no load accounting when disabled");
    }

    #[test]
    fn refine_assignment_balances_and_is_deterministic() {
        // All load starts on store 0; refinement must spread it.
        let current = vec![0u16; 8];
        let loads = vec![100u64, 1, 1, 1, 50, 50, 0, 0];
        let a = super::refine_assignment(&current, &loads, 2);
        assert_eq!(a, super::refine_assignment(&current, &loads, 2), "deterministic");
        let mut store = [0u64; 2];
        for (slot, &s) in a.iter().enumerate() {
            store[s as usize] += loads[slot];
        }
        assert_eq!(store.iter().sum::<u64>(), 203);
        assert!(store[0].abs_diff(store[1]) <= 3, "near-balance: {store:?}");
        // Everything stays put when there is only one store.
        assert_eq!(super::refine_assignment(&current, &loads, 1), current);
    }

    #[test]
    fn refine_assignment_moves_only_what_imbalance_requires() {
        // A balanced placement with one hot slot colliding onto store 0:
        // only that slot (or an equivalent-load one) should move.
        let current = vec![0u16, 1, 0, 1, 0, 1];
        let loads = vec![10u64, 10, 10, 10, 80, 0];
        let a = super::refine_assignment(&current, &loads, 2);
        let moved: Vec<usize> =
            (0..6).filter(|&slot| a[slot] != current[slot] && loads[slot] > 0).collect();
        assert!(moved.len() <= 2, "migration stays proportional to the imbalance: {a:?}");
        assert_eq!(a[4], 0, "the un-splittable hot slot itself need not move");
        let mut store = [0u64; 2];
        for (slot, &s) in a.iter().enumerate() {
            store[s as usize] += loads[slot];
        }
        assert_eq!(store[0].max(store[1]), 80, "makespan reaches the hot-slot bound: {store:?}");
    }

    #[test]
    fn refine_assignment_rehomes_slots_of_retired_stores() {
        // Shrinking 4 → 2 stores: slots of stores 2 and 3 must land on
        // stores 0/1, loaded ones spread by LPT.
        let current = vec![0u16, 1, 2, 3, 2, 3];
        let loads = vec![10u64, 10, 30, 30, 5, 5];
        let a = super::refine_assignment(&current, &loads, 2);
        assert!(a.iter().all(|&s| s < 2), "no slot left on a retired store: {a:?}");
        let mut store = [0u64; 2];
        for (slot, &s) in a.iter().enumerate() {
            store[s as usize] += loads[slot];
        }
        assert!(store[0].abs_diff(store[1]) <= 10, "re-homed near-balanced: {store:?}");
    }

    #[test]
    fn observe_pair_feeds_windowed_counts() {
        let mut r = ShardedPairRegistry::new(4, 3, Timestamp::DAY, 1, 1000);
        let p = pair(1, 2);
        r.observe_pair(Tick(0), p.packed());
        r.observe_pair(Tick(1), p.packed());
        assert_eq!(r.pair_count(p), 2);
        r.advance_to(Tick(3)); // tick 0 falls out of the 3-tick window
        assert_eq!(r.pair_count(p), 1);
    }
}
