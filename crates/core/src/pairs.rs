//! Stages (ii) and (iii): candidate-pair tracking, correlation series and
//! decayed-max shift scores.
//!
//! "We use seed tags to generate candidate topics, i.e., pairs of tags that
//! contain at least one seed tag. … For each such pair, we continuously
//! monitor the amount of documents that are annotated with both tags."
//! (§3(i)–(ii))

use enblogue_stats::shift::ShiftScorer;
use enblogue_types::{FxHashMap, TagPair, Tick, Timestamp};
use enblogue_window::{DecayValue, RingBuffer, TopK};

/// Per-pair tracked state.
pub struct PairState {
    /// Correlation values of past ticks (oldest → newest), the predictor's
    /// input window.
    pub history: RingBuffer<f64>,
    /// The decayed-max shift score (§3(iii)).
    pub score: DecayValue,
    /// Last tick in which the pair had window support (for eviction).
    pub last_support: Tick,
    /// Tick at which tracking started.
    pub since: Tick,
}

/// Summary of one ranked pair, enriched for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedPairInfo {
    /// The pair.
    pub pair: TagPair,
    /// Its current decayed score.
    pub score: f64,
    /// Newest correlation value.
    pub correlation: f64,
    /// Ticks under tracking.
    pub tracked_ticks: u64,
}

/// The candidate-pair registry: discovery, scoring, eviction, ranking.
pub struct PairRegistry {
    states: FxHashMap<u64, PairState>,
    history_len: usize,
    half_life_ms: u64,
    min_pair_support: u64,
    max_tracked_pairs: usize,
    /// Total pairs ever discovered (metrics).
    pub discovered_total: u64,
    /// Total pairs evicted (metrics).
    pub evicted_total: u64,
}

impl PairRegistry {
    /// A registry whose correlation histories hold `history_len` ticks.
    pub fn new(history_len: usize, half_life_ms: u64, min_pair_support: u64, max_tracked_pairs: usize) -> Self {
        assert!(history_len >= 2, "predictors need at least two history slots");
        PairRegistry {
            states: FxHashMap::default(),
            history_len,
            half_life_ms,
            min_pair_support,
            max_tracked_pairs,
            discovered_total: 0,
            evicted_total: 0,
        }
    }

    /// Number of currently tracked pairs.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no pair is tracked.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Whether `pair` is currently tracked.
    pub fn is_tracked(&self, pair: TagPair) -> bool {
        self.states.contains_key(&pair.packed())
    }

    /// Starts tracking `pair` at `tick` if it is not yet tracked.
    ///
    /// `backfill_zeros` seeds the correlation history with that many 0.0
    /// values. A pair is discovered the moment it first co-occurs with a
    /// seed — but its correlation *was* zero in the window before that, and
    /// without the backfill a topic that appears fully formed (the demo's
    /// "SIGMOD Athens" stunt: two tags that only ever occur together) would
    /// present a flat history at 1.0 and never register as a shift. The
    /// engine caps the backfill by stream age so a cold start does not make
    /// every initial pair look emergent.
    pub fn discover(&mut self, pair: TagPair, tick: Tick, backfill_zeros: usize) {
        self.states.entry(pair.packed()).or_insert_with(|| {
            self.discovered_total += 1;
            let mut history = RingBuffer::new(self.history_len);
            for _ in 0..backfill_zeros.min(self.history_len - 1) {
                history.push(0.0);
            }
            PairState {
                history,
                score: DecayValue::new(self.half_life_ms),
                last_support: tick,
                since: tick,
            }
        });
    }

    /// Updates one tracked pair at a tick close.
    ///
    /// * `correlation` — the windowed correlation value of this tick,
    /// * `support` — windowed co-occurrence count (for eviction),
    /// * `now` — stream time of the tick end (drives score decay).
    ///
    /// Returns the new decayed-max score. The scorer sees the history
    /// *before* this tick's value; afterwards the value is appended.
    pub fn update_pair(
        &mut self,
        pair: TagPair,
        correlation: f64,
        support: u64,
        tick: Tick,
        now: Timestamp,
        scorer: &ShiftScorer,
    ) -> f64 {
        let state = self.states.get_mut(&pair.packed()).expect("update_pair on untracked pair");
        let history: Vec<f64> = state.history.iter().copied().collect();
        // Scoring is gated on window support: measures like overlap or NPMI
        // saturate to 1.0 on a single co-occurrence of two rare tags, and
        // without the gate such one-off pairs would flood the ranking.
        // (The correlation still enters the history, so the pair's series
        // stays tick-aligned either way.)
        let shift = if support >= self.min_pair_support {
            scorer.score(&history, correlation).map(|(s, _)| s).unwrap_or(0.0)
        } else {
            0.0
        };
        let score = state.score.observe_max(now, shift);
        state.history.push(correlation);
        if support >= self.min_pair_support {
            state.last_support = tick;
        }
        score
    }

    /// Evicts pairs without support for a full history window and enforces
    /// the tracked-pair cap (lowest current scores go first). Returns the
    /// number evicted.
    pub fn evict(&mut self, tick: Tick, now: Timestamp) -> usize {
        let horizon = self.history_len as u64;
        let before = self.states.len();
        self.states.retain(|_, state| tick.since(state.last_support) < horizon);
        let mut evicted = before - self.states.len();

        if self.states.len() > self.max_tracked_pairs {
            let excess = self.states.len() - self.max_tracked_pairs;
            // Collect (score, packed) and drop the weakest `excess`.
            let mut scored: Vec<(f64, u64)> =
                self.states.iter().map(|(&packed, s)| (s.score.value_at(now), packed)).collect();
            scored.sort_unstable_by(|a, b| {
                a.0.partial_cmp(&b.0).expect("finite scores").then(a.1.cmp(&b.1))
            });
            for &(_, packed) in scored.iter().take(excess) {
                self.states.remove(&packed);
            }
            evicted += excess;
        }
        self.evicted_total += evicted as u64;
        evicted
    }

    /// The current top-k ranking by decayed score at `now`.
    pub fn ranking(&self, k: usize, now: Timestamp) -> Vec<(TagPair, f64)> {
        if self.states.is_empty() {
            return Vec::new();
        }
        let mut topk: TopK<u64> = TopK::new(k);
        for (&packed, state) in &self.states {
            let score = state.score.value_at(now);
            if score > 0.0 {
                topk.offer(packed, score);
            }
        }
        topk.into_sorted().into_iter().map(|r| (TagPair::from_packed(r.key), r.score)).collect()
    }

    /// Rich info for `pair`, if tracked.
    pub fn info(&self, pair: TagPair, tick: Tick, now: Timestamp) -> Option<TrackedPairInfo> {
        self.states.get(&pair.packed()).map(|state| TrackedPairInfo {
            pair,
            score: state.score.value_at(now),
            correlation: state.history.newest().copied().unwrap_or(0.0),
            tracked_ticks: tick.since(state.since),
        })
    }

    /// The correlation history of `pair` (oldest → newest), if tracked.
    pub fn history_of(&self, pair: TagPair) -> Option<Vec<f64>> {
        self.states.get(&pair.packed()).map(|s| s.history.iter().copied().collect())
    }

    /// Packed keys of all tracked pairs, sorted (deterministic iteration
    /// order for the engine's per-tick update loop).
    pub fn tracked_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.states.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_stats::predict::PredictorKind;
    use enblogue_stats::shift::{ErrorNormalization, ShiftScorer};
    use enblogue_types::TagId;

    fn pair(a: u32, b: u32) -> TagPair {
        TagPair::new(TagId(a), TagId(b))
    }

    fn scorer() -> ShiftScorer {
        ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Absolute)
    }

    fn registry() -> PairRegistry {
        PairRegistry::new(8, Timestamp::DAY, 1, 1000)
    }

    fn hour(h: u64) -> Timestamp {
        Timestamp::from_hours(h)
    }

    #[test]
    fn discovery_is_idempotent() {
        let mut r = registry();
        r.discover(pair(1, 2), Tick(0), 0);
        r.discover(pair(2, 1), Tick(5), 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.discovered_total, 1);
        assert!(r.is_tracked(pair(1, 2)));
    }

    #[test]
    fn flat_correlation_scores_zero() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..8u64 {
            let score = r.update_pair(pair(1, 2), 0.2, 3, Tick(t), hour(t), &s);
            if t >= 1 {
                assert_eq!(score, 0.0, "flat series must not alarm at tick {t}");
            }
        }
    }

    #[test]
    fn jump_raises_score_then_decays() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..6u64 {
            r.update_pair(pair(1, 2), 0.1, 3, Tick(t), hour(t), &s);
        }
        let jumped = r.update_pair(pair(1, 2), 0.6, 10, Tick(6), hour(6), &s);
        assert!(jumped > 0.3, "jump must register: {jumped}");
        // Correlation stays high: no further *shift*, score decays (half-
        // life is one day here).
        let later = r.update_pair(pair(1, 2), 0.6, 10, Tick(30), hour(30), &s);
        assert!(later < jumped, "score must decay after the shift: {later} !< {jumped}");
        assert!(later > jumped * 0.4, "one day later roughly half remains: {later}");
    }

    #[test]
    fn decayed_max_keeps_past_peak_over_small_new_errors() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..6u64 {
            r.update_pair(pair(1, 2), 0.1, 3, Tick(t), hour(t), &s);
        }
        let peak = r.update_pair(pair(1, 2), 0.7, 10, Tick(6), hour(6), &s);
        // A tiny wobble an hour later must not displace the decayed peak.
        let next = r.update_pair(pair(1, 2), 0.71, 10, Tick(7), hour(7), &s);
        assert!(next > 0.9 * peak, "decayed peak must dominate: {next} vs {peak}");
    }

    #[test]
    fn eviction_after_support_loss() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        r.update_pair(pair(1, 2), 0.3, 5, Tick(0), hour(0), &s);
        // Ticks 1..8: no support (support < min = 1 is passed as 0).
        for t in 1..9u64 {
            r.update_pair(pair(1, 2), 0.0, 0, Tick(t), hour(t), &s);
        }
        let evicted = r.evict(Tick(9), hour(9));
        assert_eq!(evicted, 1);
        assert!(r.is_empty());
        assert_eq!(r.evicted_total, 1);
    }

    #[test]
    fn supported_pairs_survive_eviction() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        for t in 0..20u64 {
            r.update_pair(pair(1, 2), 0.3, 5, Tick(t), hour(t), &s);
            assert_eq!(r.evict(Tick(t), hour(t)), 0);
        }
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn cap_evicts_lowest_scores() {
        let mut r = PairRegistry::new(4, Timestamp::DAY, 1, 2);
        let s = scorer();
        for (i, p) in [pair(1, 2), pair(3, 4), pair(5, 6)].into_iter().enumerate() {
            r.discover(p, Tick(0), 0);
            // Give each pair a different shift magnitude via a jump from 0.
            r.update_pair(p, 0.0, 1, Tick(0), hour(0), &s);
            r.update_pair(p, 0.1 * (i as f64 + 1.0), 1, Tick(1), hour(1), &s);
        }
        assert_eq!(r.len(), 3);
        let evicted = r.evict(Tick(1), hour(1));
        assert_eq!(evicted, 1);
        assert!(!r.is_tracked(pair(1, 2)), "weakest score evicted");
        assert!(r.is_tracked(pair(5, 6)));
    }

    #[test]
    fn ranking_orders_by_decayed_score() {
        let mut r = registry();
        let s = scorer();
        for p in [pair(1, 2), pair(3, 4)] {
            r.discover(p, Tick(0), 0);
            for t in 0..4u64 {
                r.update_pair(p, 0.1, 3, Tick(t), hour(t), &s);
            }
        }
        // Pair (3,4) jumps harder.
        r.update_pair(pair(1, 2), 0.3, 3, Tick(4), hour(4), &s);
        r.update_pair(pair(3, 4), 0.8, 3, Tick(4), hour(4), &s);
        let ranking = r.ranking(10, hour(4));
        assert_eq!(ranking.len(), 2);
        assert_eq!(ranking[0].0, pair(3, 4));
        assert!(ranking[0].1 > ranking[1].1);
        // k = 1 truncates.
        assert_eq!(r.ranking(1, hour(4)).len(), 1);
    }

    #[test]
    fn zero_scores_are_not_ranked() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(0), 0);
        r.update_pair(pair(1, 2), 0.2, 3, Tick(0), hour(0), &s);
        r.update_pair(pair(1, 2), 0.2, 3, Tick(1), hour(1), &s);
        assert!(r.ranking(5, hour(1)).is_empty(), "nothing emergent yet");
    }

    #[test]
    fn info_reports_current_state() {
        let mut r = registry();
        let s = scorer();
        r.discover(pair(1, 2), Tick(3), 0);
        r.update_pair(pair(1, 2), 0.25, 3, Tick(3), hour(3), &s);
        let info = r.info(pair(1, 2), Tick(5), hour(5)).unwrap();
        assert_eq!(info.pair, pair(1, 2));
        assert_eq!(info.correlation, 0.25);
        assert_eq!(info.tracked_ticks, 2);
        assert!(r.info(pair(7, 8), Tick(5), hour(5)).is_none());
        assert_eq!(r.history_of(pair(1, 2)), Some(vec![0.25]));
    }
}
