//! The EnBlogue components wrapped as stream operators.
//!
//! §4.1: "Data is represented in form of a tuple … consumed by stream
//! operators and pushed along producer-consumer edges in query-processing
//! plans. The filtered and manipulated data items finally arrive at sinks
//! in the operator DAG. One of the sinks is the operator that computes the
//! final rankings of emergent topics and sends them to our Web server for
//! visualization."

use crate::config::EnBlogueConfig;
use crate::engine::EnBlogueEngine;
use crate::notify::PushBroker;
use crate::stages::StagePipeline;
use enblogue_entity::tagger::EntityTagger;
use enblogue_stream::event::Event;
use enblogue_stream::operator::{EventSink, Operator};
use enblogue_types::{Document, RankingSnapshot, TagInterner, TagKind};
use std::sync::{Arc, Mutex};

/// Shared handle to the snapshots emitted by an [`EngineOp`].
pub type SnapshotHandle = Arc<Mutex<Vec<RankingSnapshot>>>;

/// Entity-tagging operator: scans document text, fills `entities`.
///
/// Canonical entity names are interned under [`TagKind::Entity`] so they
/// live in the same id space as regular tags ("these entity tags can …
/// be combined with regular tags to detect tag/entity mixtures as emergent
/// topics", §3). The raw text is dropped afterwards to bound memory.
///
/// Two `EntityTagOp`s built from the *same* tagger and interner share the
/// same signature and are deduplicated across plans — exactly the paper's
/// "entity tagging … shared for efficiency".
pub struct EntityTagOp {
    tagger: Arc<EntityTagger>,
    interner: TagInterner,
    keep_text: bool,
    /// Documents processed (metrics).
    tagged_docs: u64,
    /// Mentions found (metrics).
    mentions: u64,
}

impl EntityTagOp {
    /// An operator around `tagger`, interning into `interner`.
    pub fn new(tagger: Arc<EntityTagger>, interner: TagInterner) -> Self {
        EntityTagOp { tagger, interner, keep_text: false, tagged_docs: 0, mentions: 0 }
    }

    /// Keeps the raw text on documents (for downstream debugging).
    #[must_use]
    pub fn keep_text(mut self) -> Self {
        self.keep_text = true;
        self
    }

    fn tag_doc(&mut self, doc: &mut Document) {
        if let Some(text) = doc.text.as_deref() {
            self.tagged_docs += 1;
            for mention in self.tagger.tag_text(text) {
                self.mentions += 1;
                let id = self.interner.intern(&mention.name, TagKind::Entity);
                doc.entities.push(id);
            }
            doc.normalize();
            if !self.keep_text {
                doc.clear_text();
            }
        }
    }
}

impl Operator for EntityTagOp {
    fn name(&self) -> &str {
        "entity-tag"
    }

    fn signature(&self) -> String {
        // Same dictionary instance ⇒ same function ⇒ shareable.
        format!("entity-tag:{:p}:{}", Arc::as_ptr(&self.tagger), self.keep_text)
    }

    fn process(&mut self, event: Event, out: &mut dyn EventSink) {
        match event {
            Event::Doc(mut doc) => {
                self.tag_doc(&mut doc);
                out.emit(Event::Doc(doc));
            }
            Event::DocBatch(mut docs) => {
                for doc in &mut docs {
                    self.tag_doc(doc);
                }
                out.emit(Event::DocBatch(docs));
            }
            other => out.emit(other),
        }
    }
}

/// The ranking sink: a thin DAG adapter over the shared
/// [`StagePipeline`].
///
/// Documents feed the pipeline, tick boundaries close it through the
/// shared gap-closing path, every snapshot lands in a shared handle and
/// (optionally) a [`PushBroker`]. All EnBlogue semantics live in
/// [`crate::stages`] — this operator only translates stream events, so the
/// DAG executor and the stand-alone engine are guaranteed to agree.
pub struct EngineOp {
    name: String,
    pipeline: StagePipeline,
    snapshots: SnapshotHandle,
    broker: Option<PushBroker>,
}

impl EngineOp {
    /// A sink named `name` around `engine`.
    ///
    /// Names must be unique per plan — the signature embeds the handle, so
    /// two `EngineOp`s are never shared (each owns pipeline state).
    pub fn new(name: impl Into<String>, engine: EnBlogueEngine) -> Self {
        Self::from_pipeline(name, engine.into_pipeline())
    }

    /// A sink named `name` running a fresh standard pipeline for `config`.
    pub fn from_config(name: impl Into<String>, config: EnBlogueConfig) -> Self {
        Self::from_pipeline(name, StagePipeline::new(config))
    }

    /// A sink named `name` around an explicit (possibly extended)
    /// pipeline.
    pub fn from_pipeline(name: impl Into<String>, pipeline: StagePipeline) -> Self {
        EngineOp {
            name: name.into(),
            pipeline,
            snapshots: Arc::new(Mutex::new(Vec::new())),
            broker: None,
        }
    }

    /// Attaches a push broker; every snapshot is published to it.
    #[must_use]
    pub fn with_broker(mut self, broker: PushBroker) -> Self {
        self.broker = Some(broker);
        self
    }

    /// Handle to the emitted snapshots.
    pub fn handle(&self) -> SnapshotHandle {
        Arc::clone(&self.snapshots)
    }

    /// The wrapped pipeline (read access).
    pub fn pipeline(&self) -> &StagePipeline {
        &self.pipeline
    }
}

impl Operator for EngineOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> String {
        format!("engine:{}:{:p}", self.name, Arc::as_ptr(&self.snapshots))
    }

    fn process(&mut self, event: Event, out: &mut dyn EventSink) {
        match &event {
            Event::Doc(doc) => self.pipeline.process_doc(doc),
            // Whole tick slices take the batch fast path: one partitioning
            // pre-pass, shard-bucketed pair application.
            Event::DocBatch(docs) => self.pipeline.process_docs(docs),
            Event::TickBoundary(tick) => {
                // Close every tick up to and including the boundary, so gap
                // ticks keep the correlation histories tick-aligned.
                let broker = self.broker.as_ref();
                let snapshots = &self.snapshots;
                self.pipeline.close_through(*tick, |snapshot| {
                    if let Some(broker) = broker {
                        broker.publish(&snapshot);
                    }
                    snapshots.lock().unwrap().push(snapshot);
                });
            }
            Event::Flush => {}
        }
        // Forward everything: downstream sinks (e.g. meters) may follow.
        out.emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_entity::gazetteer::GazetteerBuilder;
    use enblogue_types::{Document, Tick, TickSpec, Timestamp};

    fn tagger() -> Arc<EntityTagger> {
        let mut b = GazetteerBuilder::default();
        b.add_title("Barack Obama");
        b.add_redirect("Obama", "Barack Obama");
        Arc::new(EntityTagger::new(Arc::new(b.build())))
    }

    #[test]
    fn entity_op_fills_entities_and_drops_text() {
        let interner = TagInterner::new();
        let mut op = EntityTagOp::new(tagger(), interner.clone());
        let doc = Document::builder(1, Timestamp::ZERO).text("Obama speaks").build();
        let mut out: Vec<Event> = Vec::new();
        op.process(Event::Doc(doc), &mut out);
        let tagged = out[0].as_doc().unwrap();
        assert_eq!(tagged.entities.len(), 1);
        let id = interner.get("barack obama", TagKind::Entity).expect("canonical name interned");
        assert!(tagged.has_entity(id));
        assert!(tagged.text.is_none(), "text dropped after tagging");
    }

    #[test]
    fn entity_op_keep_text_mode() {
        let mut op = EntityTagOp::new(tagger(), TagInterner::new()).keep_text();
        let doc = Document::builder(1, Timestamp::ZERO).text("Obama speaks").build();
        let mut out: Vec<Event> = Vec::new();
        op.process(Event::Doc(doc), &mut out);
        assert!(out[0].as_doc().unwrap().text.is_some());
    }

    #[test]
    fn entity_op_passes_docs_without_text() {
        let mut op = EntityTagOp::new(tagger(), TagInterner::new());
        let doc = Document::builder(1, Timestamp::ZERO).build();
        let mut out: Vec<Event> = Vec::new();
        op.process(Event::Doc(doc), &mut out);
        assert!(out[0].as_doc().unwrap().entities.is_empty());
    }

    #[test]
    fn entity_op_signature_shares_same_tagger_only() {
        let interner = TagInterner::new();
        let shared = tagger();
        let a = EntityTagOp::new(Arc::clone(&shared), interner.clone());
        let b = EntityTagOp::new(shared, interner.clone());
        let c = EntityTagOp::new(tagger(), interner);
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
    }

    fn engine() -> EnBlogueEngine {
        EnBlogueEngine::new(
            EnBlogueConfig::builder()
                .tick_spec(TickSpec::hourly())
                .window_ticks(4)
                .seed_count(4)
                .min_seed_count(1)
                .top_k(3)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn engine_op_snapshots_per_boundary() {
        let mut op = EngineOp::new("e1", engine());
        let handle = op.handle();
        let mut out: Vec<Event> = Vec::new();
        let doc = Document::builder(1, Timestamp::ZERO).tags([enblogue_types::TagId(1)]).build();
        op.process(Event::Doc(doc), &mut out);
        op.process(Event::TickBoundary(Tick(0)), &mut out);
        op.process(Event::TickBoundary(Tick(3)), &mut out); // gap: closes 1,2,3
        op.process(Event::Flush, &mut out);
        let snaps = handle.lock().unwrap();
        assert_eq!(snaps.len(), 4, "ticks 0..=3 closed");
        assert_eq!(snaps[0].tick, Tick(0));
        assert_eq!(snaps[3].tick, Tick(3));
        assert_eq!(out.len(), 4, "engine op forwards all events");
    }

    #[test]
    fn engine_op_doc_batches_match_per_doc_feeding() {
        let docs: Vec<Document> = (0..40)
            .map(|i| {
                Document::builder(i, Timestamp::from_hours(i / 10))
                    .tags([enblogue_types::TagId((i % 3) as u32), enblogue_types::TagId(7)])
                    .build()
            })
            .collect();
        let run = |batched: bool| {
            let mut op = EngineOp::new("e1", engine());
            let handle = op.handle();
            let mut out: Vec<Event> = Vec::new();
            for t in 0..4u64 {
                let slice: Vec<Document> = docs
                    .iter()
                    .filter(|d| d.timestamp.as_millis() / Timestamp::HOUR == t)
                    .cloned()
                    .collect();
                if batched {
                    op.process(Event::DocBatch(slice), &mut out);
                } else {
                    for d in slice {
                        op.process(Event::Doc(d), &mut out);
                    }
                }
                op.process(Event::TickBoundary(Tick(t)), &mut out);
            }
            op.process(Event::Flush, &mut out);
            let snaps = handle.lock().unwrap().clone();
            snaps
        };
        assert_eq!(run(true), run(false), "batching is invisible in snapshots");
    }

    #[test]
    fn entity_op_tags_batches() {
        let interner = TagInterner::new();
        let mut op = EntityTagOp::new(tagger(), interner.clone());
        let batch = vec![
            Document::builder(1, Timestamp::ZERO).text("Obama speaks").build(),
            Document::builder(2, Timestamp::ZERO).build(),
        ];
        let mut out: Vec<Event> = Vec::new();
        op.process(Event::DocBatch(batch), &mut out);
        let docs = out[0].docs();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].entities.len(), 1);
        assert!(docs[0].text.is_none());
        assert!(docs[1].entities.is_empty());
    }

    #[test]
    fn engine_op_publishes_to_broker() {
        let broker = PushBroker::new(TagInterner::new());
        let rx = broker.subscribe(crate::notify::PushSubscription::new(
            crate::personalization::UserProfile::new("u1"),
            5,
        ));
        let mut op = EngineOp::new("e1", engine()).with_broker(broker);
        let mut out: Vec<Event> = Vec::new();
        // Two correlated tags over several ticks to force a ranking change.
        let mut id = 0;
        for t in 0..4u64 {
            for _ in 0..3 {
                id += 1;
                let d = Document::builder(id, Timestamp::from_hours(t))
                    .tags([enblogue_types::TagId(1)])
                    .build();
                op.process(Event::Doc(d), &mut out);
            }
            op.process(Event::TickBoundary(Tick(t)), &mut out);
        }
        for t in 4..6u64 {
            for _ in 0..3 {
                id += 1;
                let d = Document::builder(id, Timestamp::from_hours(t))
                    .tags([enblogue_types::TagId(1), enblogue_types::TagId(2)])
                    .build();
                op.process(Event::Doc(d), &mut out);
            }
            op.process(Event::TickBoundary(Tick(t)), &mut out);
        }
        let mut updates = 0;
        while rx.try_recv().is_ok() {
            updates += 1;
        }
        assert!(updates >= 1, "the emerging pair must trigger at least one push");
    }

    #[test]
    fn engine_ops_are_never_shared() {
        let a = EngineOp::new("e", engine());
        let b = EngineOp::new("e", engine());
        assert_ne!(a.signature(), b.signature());
    }
}
