//! Ranking evolution: diffs, trajectories and rank correlation.
//!
//! Show Case 2 lets visitors "watch how the rankings for these topics
//! changes with time". This module provides the machinery behind such a
//! view: structural diffs between consecutive snapshots (what entered,
//! exited, moved), per-pair rank trajectories over a run, and Kendall-tau
//! agreement between two rankings (used to compare engines, users, or
//! consecutive ticks).

use enblogue_types::{FxHashMap, RankingSnapshot, TagPair, Tick};

/// One structural change between two consecutive rankings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankChange {
    /// The pair is ranked now but was not before.
    Entered {
        /// The pair.
        pair: TagPair,
        /// Its new rank (0-based).
        rank: usize,
    },
    /// The pair was ranked before but is not any more.
    Exited {
        /// The pair.
        pair: TagPair,
        /// Its previous rank (0-based).
        last_rank: usize,
    },
    /// The pair stayed ranked but changed position.
    Moved {
        /// The pair.
        pair: TagPair,
        /// Previous rank (0-based).
        from: usize,
        /// New rank (0-based).
        to: usize,
    },
}

impl RankChange {
    /// The pair this change concerns.
    pub fn pair(&self) -> TagPair {
        match *self {
            RankChange::Entered { pair, .. }
            | RankChange::Exited { pair, .. }
            | RankChange::Moved { pair, .. } => pair,
        }
    }
}

/// Structural diff between two rankings (typically consecutive ticks).
///
/// Changes are ordered: entries first (by new rank), then moves (by new
/// rank), then exits (by old rank) — the order a UI would animate them.
pub fn diff(prev: &RankingSnapshot, next: &RankingSnapshot) -> Vec<RankChange> {
    let prev_ranks: FxHashMap<TagPair, usize> =
        prev.ranked.iter().enumerate().map(|(i, &(p, _))| (p, i)).collect();
    let next_ranks: FxHashMap<TagPair, usize> =
        next.ranked.iter().enumerate().map(|(i, &(p, _))| (p, i)).collect();

    let mut entered = Vec::new();
    let mut moved = Vec::new();
    for (rank, &(pair, _)) in next.ranked.iter().enumerate() {
        match prev_ranks.get(&pair) {
            None => entered.push(RankChange::Entered { pair, rank }),
            Some(&from) if from != rank => moved.push(RankChange::Moved { pair, from, to: rank }),
            Some(_) => {}
        }
    }
    let mut exited: Vec<RankChange> = prev
        .ranked
        .iter()
        .enumerate()
        .filter(|(_, (p, _))| !next_ranks.contains_key(p))
        .map(|(last_rank, &(pair, _))| RankChange::Exited { pair, last_rank })
        .collect();
    exited.sort_by_key(|c| match c {
        RankChange::Exited { last_rank, .. } => *last_rank,
        _ => usize::MAX,
    });

    let mut changes = entered;
    changes.extend(moved);
    changes.extend(exited);
    changes
}

/// Kendall-tau rank correlation between two rankings, computed over the
/// pairs present in **both** (tau-a on the shared set).
///
/// Returns a value in `[-1, 1]`: 1 = identical order, −1 = reversed.
/// `None` when fewer than two pairs are shared (no order to compare).
pub fn kendall_tau(a: &RankingSnapshot, b: &RankingSnapshot) -> Option<f64> {
    let rank_b: FxHashMap<TagPair, usize> =
        b.ranked.iter().enumerate().map(|(i, &(p, _))| (p, i)).collect();
    // Shared pairs in a's order, with their b-ranks.
    let shared: Vec<usize> =
        a.ranked.iter().filter_map(|&(p, _)| rank_b.get(&p).copied()).collect();
    let n = shared.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            // In `a` the order is i before j; check `b`.
            if shared[i] < shared[j] {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    Some((concordant - discordant) as f64 / (concordant + discordant) as f64)
}

/// Accumulates ranking snapshots and answers trajectory queries — the
/// backing store of the demo's "time lapse" rank view.
#[derive(Debug, Default)]
pub struct RankingHistory {
    /// Per-pair `(tick, rank)` observations, in tick order.
    trajectories: FxHashMap<TagPair, Vec<(Tick, usize)>>,
    ticks_recorded: u64,
    last_tick: Option<Tick>,
}

impl RankingHistory {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one snapshot (ticks must be non-decreasing).
    ///
    /// # Panics
    /// Panics if snapshots arrive out of tick order.
    pub fn record(&mut self, snapshot: &RankingSnapshot) {
        if let Some(last) = self.last_tick {
            assert!(snapshot.tick >= last, "snapshots must arrive in tick order");
        }
        self.last_tick = Some(snapshot.tick);
        self.ticks_recorded += 1;
        for (rank, &(pair, _)) in snapshot.ranked.iter().enumerate() {
            self.trajectories.entry(pair).or_default().push((snapshot.tick, rank));
        }
    }

    /// The `(tick, rank)` trajectory of `pair` (empty if never ranked).
    pub fn trajectory(&self, pair: TagPair) -> &[(Tick, usize)] {
        self.trajectories.get(&pair).map_or(&[], |v| v.as_slice())
    }

    /// Best (lowest) rank `pair` ever reached.
    pub fn best_rank(&self, pair: TagPair) -> Option<usize> {
        self.trajectories.get(&pair)?.iter().map(|&(_, r)| r).min()
    }

    /// Number of ticks `pair` spent ranked.
    pub fn ticks_ranked(&self, pair: TagPair) -> usize {
        self.trajectories.get(&pair).map_or(0, Vec::len)
    }

    /// Number of snapshots recorded.
    pub fn ticks_recorded(&self) -> u64 {
        self.ticks_recorded
    }

    /// Pairs that were ever ranked, sorted by best rank then pair.
    pub fn all_time_toplist(&self) -> Vec<(TagPair, usize)> {
        let mut list: Vec<(TagPair, usize)> = self
            .trajectories
            .iter()
            .map(|(&pair, traj)| (pair, traj.iter().map(|&(_, r)| r).min().expect("non-empty")))
            .collect();
        list.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::{TagId, Timestamp};

    fn pair(a: u32, b: u32) -> TagPair {
        TagPair::new(TagId(a), TagId(b))
    }

    fn snap(tick: u64, pairs: &[(u32, u32)]) -> RankingSnapshot {
        RankingSnapshot {
            tick: Tick(tick),
            time: Timestamp::from_hours(tick),
            ranked: pairs
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| (pair(a, b), 1.0 - 0.1 * i as f64))
                .collect(),
        }
    }

    #[test]
    fn diff_detects_all_change_kinds() {
        let prev = snap(1, &[(1, 2), (3, 4), (5, 6)]);
        let next = snap(2, &[(3, 4), (7, 8), (1, 2)]);
        let changes = diff(&prev, &next);
        assert!(changes.contains(&RankChange::Entered { pair: pair(7, 8), rank: 1 }));
        assert!(changes.contains(&RankChange::Exited { pair: pair(5, 6), last_rank: 2 }));
        assert!(changes.contains(&RankChange::Moved { pair: pair(3, 4), from: 1, to: 0 }));
        assert!(changes.contains(&RankChange::Moved { pair: pair(1, 2), from: 0, to: 2 }));
        assert_eq!(changes.len(), 4);
    }

    #[test]
    fn diff_of_identical_rankings_is_empty() {
        let s = snap(1, &[(1, 2), (3, 4)]);
        assert!(diff(&s, &s).is_empty());
    }

    #[test]
    fn diff_orders_entries_moves_exits() {
        let prev = snap(1, &[(1, 2), (3, 4)]);
        let next = snap(2, &[(5, 6), (1, 2)]);
        let changes = diff(&prev, &next);
        assert!(matches!(changes[0], RankChange::Entered { .. }));
        assert!(matches!(changes[1], RankChange::Moved { .. }));
        assert!(matches!(changes[2], RankChange::Exited { .. }));
        assert_eq!(changes[2].pair(), pair(3, 4));
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = snap(1, &[(1, 2), (3, 4), (5, 6)]);
        let same = snap(2, &[(1, 2), (3, 4), (5, 6)]);
        let reversed = snap(2, &[(5, 6), (3, 4), (1, 2)]);
        assert_eq!(kendall_tau(&a, &same), Some(1.0));
        assert_eq!(kendall_tau(&a, &reversed), Some(-1.0));
    }

    #[test]
    fn kendall_tau_partial_overlap() {
        let a = snap(1, &[(1, 2), (3, 4), (5, 6), (7, 8)]);
        // Shares (1,2) and (5,6), same relative order, plus unrelated pairs.
        let b = snap(2, &[(9, 10), (1, 2), (5, 6)]);
        assert_eq!(kendall_tau(&a, &b), Some(1.0));
        // Fewer than two shared pairs: no order to compare.
        let c = snap(2, &[(1, 2)]);
        assert_eq!(kendall_tau(&a, &c), None);
        let d = snap(2, &[(11, 12)]);
        assert_eq!(kendall_tau(&a, &d), None);
    }

    #[test]
    fn history_tracks_trajectories() {
        let mut h = RankingHistory::new();
        h.record(&snap(1, &[(1, 2), (3, 4)]));
        h.record(&snap(2, &[(3, 4), (1, 2)]));
        h.record(&snap(3, &[(3, 4)]));
        assert_eq!(h.trajectory(pair(1, 2)), &[(Tick(1), 0), (Tick(2), 1)]);
        assert_eq!(h.best_rank(pair(1, 2)), Some(0));
        assert_eq!(h.best_rank(pair(3, 4)), Some(0));
        assert_eq!(h.ticks_ranked(pair(3, 4)), 3);
        assert_eq!(h.ticks_ranked(pair(9, 9 + 1)), 0);
        assert_eq!(h.best_rank(pair(5, 6)), None);
        assert_eq!(h.ticks_recorded(), 3);
    }

    #[test]
    fn all_time_toplist_orders_by_best_rank() {
        let mut h = RankingHistory::new();
        h.record(&snap(1, &[(1, 2), (3, 4)]));
        h.record(&snap(2, &[(3, 4), (5, 6)]));
        let toplist = h.all_time_toplist();
        assert_eq!(toplist[0].1, 0);
        assert_eq!(toplist.len(), 3);
        // (1,2) and (3,4) both reached rank 0; tie broken by pair order.
        assert_eq!(toplist[0].0, pair(1, 2));
        assert_eq!(toplist[1].0, pair(3, 4));
        assert_eq!(toplist[2], (pair(5, 6), 1));
    }

    #[test]
    #[should_panic(expected = "tick order")]
    fn history_rejects_out_of_order_snapshots() {
        let mut h = RankingHistory::new();
        h.record(&snap(5, &[(1, 2)]));
        h.record(&snap(3, &[(1, 2)]));
    }
}
