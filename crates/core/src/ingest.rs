//! Adapters between the `enblogue-ingest` subsystem and the shared stage
//! pipeline.
//!
//! `enblogue-ingest` owns the mechanics (batch planning, the bounded work
//! queue, the partitioning worker pool, deterministic re-sequencing); this
//! module owns the semantics: [`ReplayIngest`] implements
//! [`IngestSink`] over a [`StagePipeline`], so batches land in
//! [`StagePipeline::process_partitioned`] and tick closes run through the
//! shared gap-closing path. Because the DAG sink and the stand-alone
//! engine are both thin adapters over the same pipeline, wiring the sink
//! here gives *both* surfaces shard-partitioned parallel ingestion.

use crate::stages::StagePipeline;
use enblogue_ingest::partition::{PartitionSpec, PartitionedBatch};
use enblogue_ingest::pipeline::IngestSink;
use enblogue_types::{Document, RankingSnapshot, Tick};

/// An [`IngestSink`] that feeds a stage pipeline and collects the ranking
/// snapshot of every closed tick — the parallel-ingestion counterpart of
/// [`StagePipeline::run_replay`].
pub struct ReplayIngest<'p> {
    pipeline: &'p mut StagePipeline,
    snapshots: Vec<RankingSnapshot>,
}

impl<'p> ReplayIngest<'p> {
    /// A sink around `pipeline`, starting with no collected snapshots.
    pub fn new(pipeline: &'p mut StagePipeline) -> Self {
        ReplayIngest { pipeline, snapshots: Vec::new() }
    }

    /// The snapshots of every tick closed through this sink, in order.
    pub fn into_snapshots(self) -> Vec<RankingSnapshot> {
        self.snapshots
    }
}

impl IngestSink for ReplayIngest<'_> {
    fn partition_spec(&self) -> PartitionSpec {
        self.pipeline.partition_spec()
    }

    fn apply_batch(&mut self, docs: &[Document], partitioned: &PartitionedBatch) {
        // Resume-then-tail-replay: on a pipeline restored from a
        // checkpoint, the first batches arrive without the leading
        // `close_through` a continuous plan would have scheduled — the
        // planner only sees the tail. Close every tick an uninterrupted
        // run would have closed before this batch (a still-open
        // checkpoint tick included) first. For a pipeline that was never
        // restored (or any batch after the first close) this is a no-op:
        // the plan's own close ops keep the cursor one tick behind every
        // batch.
        if let Some(first) = docs.first() {
            let tick = self.pipeline.config().tick_spec.tick_of(first.timestamp);
            if let Some(closed) = self.pipeline.last_closed() {
                assert!(
                    tick > closed,
                    "ingest tail must start after the already-closed tick {closed} (got {tick})"
                );
            }
            let snapshots = &mut self.snapshots;
            self.pipeline.close_gap_before(tick, |snapshot| snapshots.push(snapshot));
        }
        self.pipeline.process_partitioned(docs, partitioned);
    }

    fn close_through(&mut self, tick: Tick) {
        let snapshots = &mut self.snapshots;
        self.pipeline.close_through(tick, |snapshot| snapshots.push(snapshot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnBlogueConfig;
    use enblogue_ingest::pipeline::{IngestConfig, IngestPipeline};
    use enblogue_types::{TagId, TickSpec, Timestamp};

    fn config() -> EnBlogueConfig {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::hourly())
            .window_ticks(6)
            .seed_count(8)
            .min_seed_count(1)
            .top_k(5)
            .min_pair_support(1)
            .shards(4)
            .build()
            .unwrap()
    }

    fn docs() -> Vec<Document> {
        let mut docs = Vec::new();
        let mut id = 0;
        for hour in 0..10u64 {
            for _ in 0..4 {
                for tags in [&[1u32][..], &[2], if hour >= 7 { &[1, 2] } else { &[3] }] {
                    id += 1;
                    docs.push(
                        Document::builder(id, Timestamp::from_hours(hour))
                            .tags(tags.iter().map(|&t| TagId(t)))
                            .build(),
                    );
                }
            }
        }
        docs
    }

    #[test]
    fn ingest_replay_matches_sequential_replay() {
        let docs = docs();
        let mut sequential = StagePipeline::new(config());
        let baseline = sequential.run_replay(&docs);
        assert!(!baseline.is_empty());
        for (batch_size, workers) in [(1usize, 1usize), (7, 2), (64, 4)] {
            let mut pipeline = StagePipeline::new(config());
            let mut sink = ReplayIngest::new(&mut pipeline);
            let stats = IngestPipeline::new(IngestConfig { batch_size, queue_depth: 4, workers })
                .run(&mut sink, &docs);
            assert_eq!(stats.docs, docs.len() as u64);
            assert_eq!(
                sink.into_snapshots(),
                baseline,
                "batch={batch_size} workers={workers} diverged"
            );
            assert_eq!(pipeline.metrics(), sequential.metrics(), "engine counters diverged");
        }
    }
}
