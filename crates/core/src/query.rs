//! The unified read surface: one `QueryView` trait over the engine's
//! in-place state and the serving tier's published snapshots.
//!
//! Historically the engine grew five scattered read accessors
//! (`latest_snapshot`, `current_seeds`, `is_seed`, `pair_info`,
//! `pair_history`) plus a free-function `personalize()` — all reachable
//! only through the engine owner, so nothing could read while the stream
//! ingested. This module re-homes them onto a single coherent API:
//!
//! * [`QueryView`] — the trait: top-k, seed membership, per-pair
//!   drill-down, pair history, tag names, and personalized re-ranking.
//! * [`EngineQuery`] — the engine's **in-place** view (borrowing the
//!   pipeline; answers from live state, single-threaded).
//! * [`ViewData`] — the **published** view payload: a self-contained,
//!   immutable export of everything the trait answers, built at tick
//!   close by [`crate::stages::PipelineState::export_view`]. The
//!   `enblogue-serve` crate wraps it in an epoch-versioned `TickView`
//!   behind a lock-free handle so any number of threads query it while
//!   ingest continues.
//!
//! Parity contract: for the same closed tick, `EngineQuery` and a
//! published `ViewData` answer **byte-identically** — with one scoped
//! exception. Under [`PublishDetail::Ranked`] (the cheap default) the
//! view carries per-pair stats and histories only for the *ranked*
//! pairs, so `pair_info` / `pair_history` / `tag_name` answer `None` for
//! tracked-but-unranked pairs; under [`PublishDetail::Full`] every
//! tracked pair is exported and the accessors agree everywhere
//! (`tests/serve_parity.rs` pins both). Scores are exported in their
//! lazy `(value, last_update)` decay form and evaluated at the same
//! `now` the engine uses, so the f64s match bit-for-bit.

use crate::pairs::TrackedPairInfo;
use crate::personalization::{personalize, personalize_shared, PersonalizedRanking, UserProfile};
use crate::stages::StagePipeline;
use enblogue_types::{RankingSnapshot, TagId, TagInterner, TagPair, Tick, Timestamp};
use enblogue_window::decay::DecayValue;
use std::sync::Arc;

/// How much per-pair state a published view carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PublishDetail {
    /// Stats and histories for the **ranked** pairs only. Publish cost is
    /// O(top-k), independent of the tracked-pair population — this is the
    /// production default (the 3%-of-close publish gate in `perf_serve`
    /// holds at this detail level).
    #[default]
    Ranked,
    /// Stats and histories for **every** tracked pair: `pair_info` /
    /// `pair_history` parity with the engine across the whole population.
    /// Publish cost is O(tracked pairs) — a column copy of the registry —
    /// so reserve it for parity tests and low-rate inspection.
    Full,
}

/// The unified read API over a closed tick's results.
///
/// Implemented by [`EngineQuery`] (live, in-place) and by the serving
/// tier's published views (`enblogue_serve::{TickView, QueryHandle}` —
/// immutable, lock-free, concurrent). Everything here answers from the
/// most recently closed tick; before the first close, `Option`s are
/// `None` and collections are empty.
pub trait QueryView {
    /// Version of the data answered from. Monotonically increasing; two
    /// reads with equal epochs saw identical data. (Engine views count
    /// closed ticks; published views count publishes.)
    fn epoch(&self) -> u64;

    /// The closed tick the answers describe, if any tick has closed.
    fn tick(&self) -> Option<Tick>;

    /// The full ranking of the latest closed tick.
    fn ranking(&self) -> Option<RankingSnapshot>;

    /// The current seed tags, sorted.
    fn seeds(&self) -> Vec<TagId>;

    /// Whether `tag` is currently a seed.
    fn is_seed(&self, tag: TagId) -> bool;

    /// Rich info on a tracked pair (see the parity note on
    /// [`PublishDetail`] for which pairs a published view can answer).
    fn pair_info(&self, pair: TagPair) -> Option<TrackedPairInfo>;

    /// The correlation history of a tracked pair (oldest → newest).
    fn pair_history(&self, pair: TagPair) -> Option<Vec<f64>>;

    /// The display name of `tag`. Published views resolve names at
    /// publish time for the ranked pairs' member tags; other tags answer
    /// `None` there even when a live interner could name them.
    fn tag_name(&self, tag: TagId) -> Option<Arc<str>>;

    /// Re-ranks the latest ranking for `profile` (the paper's
    /// personalization component). `None` before the first close.
    fn personalized(&self, profile: &UserProfile) -> Option<PersonalizedRanking>;

    /// The best `k` ranked topics.
    fn top_k(&self, k: usize) -> Vec<(TagPair, f64)> {
        self.ranking().map(|s| s.top(k).to_vec()).unwrap_or_default()
    }

    /// Per-tag drill-down: the ranked topics containing `tag`, best
    /// first (the demo's "click a tag" view over the displayed ranking).
    fn pairs_with_tag(&self, tag: TagId) -> Vec<(TagPair, f64)> {
        self.ranking()
            .map(|s| s.ranked.into_iter().filter(|(p, _)| p.lo() == tag || p.hi() == tag).collect())
            .unwrap_or_default()
    }
}

/// The engine's in-place [`QueryView`]: borrows the pipeline and answers
/// from live state through the same accessors the engine forwards to.
///
/// Obtain one with `EnBlogueEngine::query_view` /
/// `StagePipeline::query_view`. The interner is needed because keyword
/// personalization and `tag_name` resolve display names; pass the same
/// interner the documents were tagged with.
pub struct EngineQuery<'a> {
    pipeline: &'a StagePipeline,
    interner: TagInterner,
}

impl<'a> EngineQuery<'a> {
    pub(crate) fn new(pipeline: &'a StagePipeline, interner: TagInterner) -> Self {
        EngineQuery { pipeline, interner }
    }

    /// The interner names are resolved through.
    pub fn interner(&self) -> &TagInterner {
        &self.interner
    }
}

impl QueryView for EngineQuery<'_> {
    fn epoch(&self) -> u64 {
        self.pipeline.state().ticks_closed()
    }

    fn tick(&self) -> Option<Tick> {
        self.pipeline.latest_snapshot().map(|s| s.tick)
    }

    fn ranking(&self) -> Option<RankingSnapshot> {
        self.pipeline.latest_snapshot().cloned()
    }

    fn seeds(&self) -> Vec<TagId> {
        self.pipeline.current_seeds()
    }

    fn is_seed(&self, tag: TagId) -> bool {
        self.pipeline.is_seed(tag)
    }

    fn pair_info(&self, pair: TagPair) -> Option<TrackedPairInfo> {
        self.pipeline.pair_info(pair)
    }

    fn pair_history(&self, pair: TagPair) -> Option<Vec<f64>> {
        self.pipeline.pair_history(pair)
    }

    fn tag_name(&self, tag: TagId) -> Option<Arc<str>> {
        self.interner.name(tag)
    }

    fn personalized(&self, profile: &UserProfile) -> Option<PersonalizedRanking> {
        self.pipeline.latest_snapshot().map(|s| personalize(s, profile, &self.interner))
    }
}

/// The published view payload: a self-contained export of one closed
/// tick, built by [`crate::stages::PipelineState::export_view`].
///
/// Everything a [`QueryView`] answers lives inside — ranking, sorted
/// seed set, resolved tag names, and columnar per-pair stats (packed
/// keys, lazy decay scores, newest correlations, tracking-start ticks,
/// concatenated histories) — so queries never reach back into mutable
/// engine state and never take a lock. The struct is designed for
/// *reuse*: `export_view` clears and refills the columns in place, so a
/// warm publish performs zero heap allocations (pinned by
/// `close_allocs.rs`).
#[derive(Debug, Clone)]
pub struct ViewData {
    /// Publish epoch (set by the publisher; 0 = never published).
    pub epoch: u64,
    /// The exported ranking (`None` only before the first close).
    pub ranking: Option<RankingSnapshot>,
    /// The seed set at the close, sorted.
    pub seeds: Vec<TagId>,
    /// `(tag, name)` for the ranked pairs' member tags, sorted by tag —
    /// the interner snapshot personalization reads instead of the live
    /// interner (fill with [`ViewData::resolve_names`]).
    pub names: Vec<(TagId, Arc<str>)>,
    /// Which pairs the columns below cover.
    pub detail: PublishDetail,
    /// The tick `tracked_ticks` is measured against (the engine uses the
    /// latest snapshot's tick).
    pub info_tick: Tick,
    /// The stream time decayed scores are evaluated at (the engine uses
    /// the latest snapshot's time).
    pub now: Timestamp,
    // Columnar per-pair stats, aligned and sorted by packed key.
    pub(crate) keys: Vec<u64>,
    pub(crate) scores: Vec<DecayValue>,
    pub(crate) correlations: Vec<f64>,
    pub(crate) since: Vec<Tick>,
    /// Prefix offsets into `histories`: pair `i`'s history is
    /// `histories[history_off[i] .. history_off[i + 1]]`.
    pub(crate) history_off: Vec<u32>,
    pub(crate) histories: Vec<f64>,
    /// Export scratch: `(packed key, shard, slot)` triples, kept to make
    /// repeated exports allocation-free.
    pub(crate) scratch: Vec<(u64, u32, u32)>,
    /// Name-resolution scratch.
    pub(crate) scratch_tags: Vec<TagId>,
}

impl Default for ViewData {
    fn default() -> Self {
        ViewData {
            epoch: 0,
            ranking: None,
            seeds: Vec::new(),
            names: Vec::new(),
            detail: PublishDetail::default(),
            info_tick: Tick::ZERO,
            now: Timestamp::ZERO,
            keys: Vec::new(),
            scores: Vec::new(),
            correlations: Vec::new(),
            since: Vec::new(),
            history_off: Vec::new(),
            histories: Vec::new(),
            scratch: Vec::new(),
            scratch_tags: Vec::new(),
        }
    }
}

impl ViewData {
    /// Number of pairs the stat columns cover (ranked pairs under
    /// [`PublishDetail::Ranked`], every tracked pair under
    /// [`PublishDetail::Full`]).
    pub fn covered_pairs(&self) -> usize {
        self.keys.len()
    }

    /// Resolves the ranked pairs' member-tag names into
    /// [`ViewData::names`] through `lookup` (typically
    /// `|t| interner.name(t)`). Reuses internal buffers; `Arc<str>`
    /// clones are refcount bumps, so a warm call does not allocate.
    pub fn resolve_names(&mut self, mut lookup: impl FnMut(TagId) -> Option<Arc<str>>) {
        self.scratch_tags.clear();
        if let Some(snapshot) = &self.ranking {
            self.scratch_tags.extend(snapshot.member_tags());
        }
        self.scratch_tags.sort_unstable();
        self.scratch_tags.dedup();
        self.names.clear();
        for &tag in &self.scratch_tags {
            if let Some(name) = lookup(tag) {
                self.names.push((tag, name));
            }
        }
    }

    /// Column index of `pair`, if covered.
    fn slot_of(&self, pair: TagPair) -> Option<usize> {
        self.keys.binary_search(&pair.packed()).ok()
    }

    /// Clears the stat columns for refilling (capacity retained).
    pub(crate) fn clear_columns(&mut self) {
        self.keys.clear();
        self.scores.clear();
        self.correlations.clear();
        self.since.clear();
        self.history_off.clear();
        self.histories.clear();
    }

    /// Appends one pair's stats row (the caller feeds rows in ascending
    /// key order; `history_off` gets its final bound from the running
    /// `histories` length).
    pub(crate) fn push_row(
        &mut self,
        key: u64,
        score: DecayValue,
        correlation: f64,
        since: Tick,
        history: (&[f64], &[f64]),
    ) {
        debug_assert!(self.keys.last().is_none_or(|&k| k < key), "rows must arrive key-sorted");
        self.keys.push(key);
        self.scores.push(score);
        self.correlations.push(correlation);
        self.since.push(since);
        self.history_off.push(self.histories.len() as u32);
        self.histories.extend_from_slice(history.0);
        self.histories.extend_from_slice(history.1);
    }

    /// Seals the history offsets after the last [`ViewData::push_row`].
    pub(crate) fn seal_rows(&mut self) {
        self.history_off.push(self.histories.len() as u32);
    }
}

impl QueryView for ViewData {
    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn tick(&self) -> Option<Tick> {
        self.ranking.as_ref().map(|s| s.tick)
    }

    fn ranking(&self) -> Option<RankingSnapshot> {
        self.ranking.clone()
    }

    fn seeds(&self) -> Vec<TagId> {
        self.seeds.clone()
    }

    fn is_seed(&self, tag: TagId) -> bool {
        self.seeds.binary_search(&tag).is_ok()
    }

    fn pair_info(&self, pair: TagPair) -> Option<TrackedPairInfo> {
        self.slot_of(pair).map(|i| TrackedPairInfo {
            pair,
            score: self.scores[i].value_at(self.now),
            correlation: self.correlations[i],
            tracked_ticks: self.info_tick.since(self.since[i]),
        })
    }

    fn pair_history(&self, pair: TagPair) -> Option<Vec<f64>> {
        self.slot_of(pair).map(|i| {
            let (lo, hi) = (self.history_off[i] as usize, self.history_off[i + 1] as usize);
            self.histories[lo..hi].to_vec()
        })
    }

    fn tag_name(&self, tag: TagId) -> Option<Arc<str>> {
        self.names.binary_search_by_key(&tag, |&(t, _)| t).ok().map(|i| self.names[i].1.clone())
    }

    fn personalized(&self, profile: &UserProfile) -> Option<PersonalizedRanking> {
        self.ranking.as_ref().map(|s| personalize_shared(s, profile, &self.names))
    }
}

/// Keeps `resolve_ranked_names_into` and [`ViewData::resolve_names`]
/// honest about producing the same table shape.
#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::TagKind;

    #[test]
    fn view_data_resolves_names_like_the_free_function() {
        let interner = TagInterner::new();
        let a = interner.intern("alpha", TagKind::Hashtag);
        let b = interner.intern("beta", TagKind::Hashtag);
        let c = interner.intern("gamma", TagKind::Hashtag);
        let snapshot = RankingSnapshot {
            tick: Tick(4),
            time: Timestamp::from_hours(4),
            ranked: vec![(TagPair::new(b, a), 0.9), (TagPair::new(a, c), 0.7)],
        };
        let mut data = ViewData { ranking: Some(snapshot.clone()), ..ViewData::default() };
        data.resolve_names(|t| interner.name(t));
        let free = crate::personalization::resolve_ranked_names(&snapshot, |t| interner.name(t));
        assert_eq!(data.names, free);
        assert_eq!(data.tag_name(a).as_deref(), Some("alpha"));
        assert_eq!(data.tag_name(TagId(999)), None);
    }
}
