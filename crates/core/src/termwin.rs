//! Windowed per-tag term distributions (the relative-entropy variant).
//!
//! §3(ii): "In the more complex case of documents being represented by
//! their entire tag sets or term distributions, we can apply
//! information-theory measures like relative entropy to assess the
//! similarity of tag/term usage." For each tag, this structure aggregates
//! the content terms of all window documents annotated with it; the
//! correlation of a pair is then the Jensen–Shannon similarity of the two
//! member distributions.
//!
//! Only allocated when the engine is configured with
//! [`crate::config::MeasureKind::JsDivergence`] — the per-document cost is
//! `O(tags × terms)` and pointless otherwise.

use crate::snapshot::{corrupt, SnapReader, SnapWriter};
use enblogue_stats::divergence::TermDistribution;
use enblogue_types::{Document, EnBlogueError, FxHashMap, TagId, Tick};
use std::collections::VecDeque;

/// Per-tag term distributions over a sliding window of ticks.
pub struct WindowedTermDists {
    window_ticks: usize,
    /// Aggregated distribution per tag.
    totals: FxHashMap<TagId, TermDistribution>,
    /// Per-tick contributions, oldest first: `(tag, term, count)` triples,
    /// kept compact for cheap eviction replay.
    ticks: VecDeque<Vec<(TagId, TagId, u32)>>,
    newest_tick: Option<Tick>,
    /// Scratch buffer for per-document term counting.
    scratch: FxHashMap<TagId, u32>,
}

impl WindowedTermDists {
    /// Distributions windowed over `window_ticks`.
    ///
    /// # Panics
    /// Panics if `window_ticks == 0`.
    pub fn new(window_ticks: usize) -> Self {
        assert!(window_ticks > 0, "window must span at least one tick");
        WindowedTermDists {
            window_ticks,
            totals: FxHashMap::default(),
            ticks: VecDeque::with_capacity(window_ticks),
            newest_tick: None,
            scratch: FxHashMap::default(),
        }
    }

    fn advance_to(&mut self, tick: Tick) {
        let Some(newest) = self.newest_tick else {
            self.ticks.push_back(Vec::new());
            self.newest_tick = Some(tick);
            return;
        };
        if tick <= newest {
            return;
        }
        let gap = tick.since(newest) as usize;
        if gap >= self.window_ticks {
            self.ticks.clear();
            self.totals.clear();
            self.ticks.push_back(Vec::new());
        } else {
            for _ in 0..gap {
                if self.ticks.len() == self.window_ticks {
                    self.expire_oldest();
                }
                self.ticks.push_back(Vec::new());
            }
        }
        self.newest_tick = Some(tick);
    }

    fn expire_oldest(&mut self) {
        let Some(expired) = self.ticks.pop_front() else { return };
        for (tag, term, count) in expired {
            if let Some(dist) = self.totals.get_mut(&tag) {
                dist.remove(term, count as u64);
                if dist.is_empty() {
                    self.totals.remove(&tag);
                }
            }
        }
    }

    /// Records `doc`'s terms under each of its annotations, in `tick`.
    ///
    /// `use_entities` mirrors the engine config: when set, entity
    /// annotations also accumulate term distributions.
    pub fn observe_doc(&mut self, tick: Tick, doc: &Document, use_entities: bool) {
        if doc.terms.is_empty() {
            return;
        }
        self.advance_to(tick);
        // Count the document's terms once.
        self.scratch.clear();
        for &term in &doc.terms {
            *self.scratch.entry(term).or_insert(0) += 1;
        }
        let log = self.ticks.back_mut().expect("advance_to ensures a slot");
        let mut record =
            |tag: TagId,
             scratch: &FxHashMap<TagId, u32>,
             totals: &mut FxHashMap<TagId, TermDistribution>| {
                let dist = totals.entry(tag).or_default();
                for (&term, &count) in scratch {
                    dist.add(term, count as u64);
                    log.push((tag, term, count));
                }
            };
        for &tag in &doc.tags {
            record(tag, &self.scratch, &mut self.totals);
        }
        if use_entities {
            for &entity in &doc.entities {
                record(entity, &self.scratch, &mut self.totals);
            }
        }
    }

    /// Advances the window to `tick` without recording anything.
    pub fn close_tick(&mut self, tick: Tick) {
        self.advance_to(tick);
    }

    /// The windowed term distribution of `tag`, if any terms were seen.
    pub fn distribution(&self, tag: TagId) -> Option<&TermDistribution> {
        self.totals.get(&tag)
    }

    /// Jensen–Shannon similarity of two tags' distributions (0 when either
    /// is empty — no term evidence means no correlation signal).
    pub fn js_similarity(&self, a: TagId, b: TagId) -> f64 {
        match (self.totals.get(&a), self.totals.get(&b)) {
            (Some(da), Some(db)) => da.js_similarity(db),
            _ => 0.0,
        }
    }

    /// Number of tags with live distributions.
    pub fn tracked_tags(&self) -> usize {
        self.totals.len()
    }

    /// Serializes the windowed distributions into `w`: the per-tick
    /// contribution logs (already in deterministic append order) plus the
    /// newest tick. The aggregated totals are *not* written — they are
    /// exact integer sums of the logs and are rebuilt on decode.
    pub(crate) fn encode_snapshot(&self, w: &mut SnapWriter) {
        w.opt_tick(self.newest_tick);
        w.usize(self.ticks.len());
        for log in &self.ticks {
            w.usize(log.len());
            for &(tag, term, count) in log {
                w.tag(tag);
                w.tag(term);
                w.u32(count);
            }
        }
    }

    /// Rebuilds windowed distributions from
    /// [`WindowedTermDists::encode_snapshot`] output, replaying the logs
    /// into fresh totals (integer-exact).
    pub(crate) fn decode_snapshot(
        r: &mut SnapReader<'_>,
        window_ticks: usize,
    ) -> Result<Self, EnBlogueError> {
        let newest_tick = r.opt_tick()?;
        let ticks = r.seq(8)?;
        if ticks > window_ticks {
            return Err(corrupt(format!(
                "term window holds {ticks} tick logs, window spans {window_ticks}"
            )));
        }
        if newest_tick.is_none() && ticks > 0 {
            return Err(corrupt("term-window tick logs without a newest tick"));
        }
        let mut dists = WindowedTermDists::new(window_ticks);
        dists.newest_tick = newest_tick;
        for _ in 0..ticks {
            let entries = r.seq(12)?;
            let mut log = Vec::with_capacity(entries);
            for _ in 0..entries {
                let tag = r.tag()?;
                let term = r.tag()?;
                let count = r.u32()?;
                dists.totals.entry(tag).or_default().add(term, count as u64);
                log.push((tag, term, count));
            }
            dists.ticks.push_back(log);
        }
        Ok(dists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::Timestamp;

    fn doc(id: u64, tags: &[u32], terms: &[u32]) -> Document {
        Document::builder(id, Timestamp::ZERO)
            .tags(tags.iter().map(|&t| TagId(t)))
            .terms(terms.iter().map(|&t| TagId(t)))
            .build()
    }

    #[test]
    fn accumulates_terms_per_tag() {
        let mut w = WindowedTermDists::new(4);
        w.observe_doc(Tick(0), &doc(1, &[1], &[100, 100, 101]), true);
        let dist = w.distribution(TagId(1)).unwrap();
        assert_eq!(dist.total(), 3);
        assert_eq!(dist.probability(TagId(100)), 2.0 / 3.0);
        assert!(w.distribution(TagId(2)).is_none());
    }

    #[test]
    fn multiple_tags_share_the_docs_terms() {
        let mut w = WindowedTermDists::new(4);
        w.observe_doc(Tick(0), &doc(1, &[1, 2], &[100, 101]), true);
        assert!((w.js_similarity(TagId(1), TagId(2)) - 1.0).abs() < 1e-9, "identical usage");
        assert_eq!(w.tracked_tags(), 2);
    }

    #[test]
    fn eviction_removes_expired_contributions() {
        let mut w = WindowedTermDists::new(2);
        w.observe_doc(Tick(0), &doc(1, &[1], &[100]), true);
        w.observe_doc(Tick(1), &doc(2, &[1], &[101]), true);
        assert_eq!(w.distribution(TagId(1)).unwrap().total(), 2);
        w.close_tick(Tick(2)); // tick 0 expires
        assert_eq!(w.distribution(TagId(1)).unwrap().total(), 1);
        assert_eq!(w.distribution(TagId(1)).unwrap().probability(TagId(101)), 1.0);
        w.close_tick(Tick(3)); // tick 1 expires; tag has no terms left
        assert!(w.distribution(TagId(1)).is_none());
        assert_eq!(w.tracked_tags(), 0);
    }

    #[test]
    fn big_gap_clears_everything() {
        let mut w = WindowedTermDists::new(3);
        w.observe_doc(Tick(0), &doc(1, &[1], &[100]), true);
        w.close_tick(Tick(50));
        assert_eq!(w.tracked_tags(), 0);
    }

    #[test]
    fn entities_respected_per_flag() {
        let d = Document::builder(1, Timestamp::ZERO).entity(TagId(9)).terms([TagId(100)]).build();
        let mut with = WindowedTermDists::new(2);
        with.observe_doc(Tick(0), &d, true);
        assert!(with.distribution(TagId(9)).is_some());

        let mut without = WindowedTermDists::new(2);
        without.observe_doc(Tick(0), &d, false);
        assert!(without.distribution(TagId(9)).is_none());
    }

    #[test]
    fn similarity_tracks_convergence_over_window() {
        let mut w = WindowedTermDists::new(8);
        // Tags 1 and 2 start with disjoint vocabularies.
        w.observe_doc(Tick(0), &doc(1, &[1], &[100, 101]), true);
        w.observe_doc(Tick(0), &doc(2, &[2], &[200, 201]), true);
        let before = w.js_similarity(TagId(1), TagId(2));
        // Then tag 2's documents start using tag 1's vocabulary.
        for t in 1..5u64 {
            w.observe_doc(Tick(t), &doc(10 + t, &[2], &[100, 101]), true);
        }
        let after = w.js_similarity(TagId(1), TagId(2));
        assert!(after > before + 0.3, "convergence must raise similarity: {before} -> {after}");
    }

    #[test]
    fn docs_without_terms_are_ignored() {
        let mut w = WindowedTermDists::new(2);
        w.observe_doc(Tick(0), &doc(1, &[1], &[]), true);
        assert_eq!(w.tracked_tags(), 0);
    }
}
