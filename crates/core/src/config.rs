//! Engine configuration.

use crate::pairs::{RebalanceConfig, ScoringMode};
use enblogue_stats::correlation::CorrelationMeasure;
use enblogue_stats::predict::PredictorKind;
use enblogue_stats::shift::ErrorNormalization;
use enblogue_stream::exec::default_parallelism;
use enblogue_types::{EnBlogueError, TickSpec, Timestamp};
use serde::{Deserialize, Serialize};

/// How seed tags are selected (§3(i): "Seed tags can be determined based on
/// different criteria, such as popularity and volatility").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SeedStrategy {
    /// Top-S tags by windowed document count (the paper's default:
    /// "We choose seed tags to be popular tags").
    #[default]
    Popularity,
    /// Top-S tags by coefficient of variation of their per-tick counts,
    /// among tags meeting the popularity floor.
    Volatility,
    /// Weighted blend: `w·popularity_rankscore + (1−w)·volatility_rankscore`.
    Hybrid {
        /// Weight of popularity in `[0, 1]`.
        popularity_weight: f64,
    },
    /// Approximate popularity from a Space-Saving sketch with the given
    /// number of counters (ablation P5: sketch vs exact seed selection).
    SketchPopularity {
        /// Number of Space-Saving counters.
        capacity: usize,
    },
}

/// Which correlation measure the tracker computes per pair (§3(ii)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MeasureKind {
    /// Set-overlap measure over windowed document counts.
    Set(CorrelationMeasure),
    /// Jensen–Shannon similarity of the member tags' windowed term
    /// distributions (the paper's "information-theory measures like
    /// relative entropy" variant). Requires documents to carry terms.
    JsDivergence,
}

impl Default for MeasureKind {
    fn default() -> Self {
        MeasureKind::Set(CorrelationMeasure::Jaccard)
    }
}

impl MeasureKind {
    /// Short identifier for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            MeasureKind::Set(m) => m.name(),
            MeasureKind::JsDivergence => "jsd",
        }
    }
}

/// Periodic checkpointing policy (see [`crate::snapshot`]).
///
/// Disabled by default (`interval_ticks == 0`). When enabled, a
/// `checkpoint` stage runs at every tick close and, every
/// `interval_ticks` closed ticks, serializes the full engine state into
/// `directory/checkpoint-<tick>.snap` (atomic temp-file + rename), then
/// prunes all but the newest `retention` files. Checkpointing never
/// changes what is computed — rankings are byte-identical with any
/// policy, pinned by `tests/stage_parity.rs` — and a failed write is
/// counted in [`crate::stages::EngineCounters::snapshot_failures`] rather
/// than crashing the stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotConfig {
    /// Checkpoint every this many closed ticks; `0` disables the stage.
    pub interval_ticks: u64,
    /// Directory receiving `checkpoint-<tick>.snap` files (created on
    /// first write). Must be non-empty when the interval is set.
    pub directory: String,
    /// Number of newest checkpoint files kept after each write (≥ 1).
    pub retention: usize,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig { interval_ticks: 0, directory: String::new(), retention: 2 }
    }
}

impl SnapshotConfig {
    /// The disabled policy (no checkpoint stage is mounted).
    pub fn disabled() -> Self {
        SnapshotConfig::default()
    }

    /// Checkpoint every `interval_ticks` closed ticks into `directory`,
    /// with the default retention of 2.
    pub fn every(interval_ticks: u64, directory: impl Into<String>) -> Self {
        SnapshotConfig { interval_ticks, directory: directory.into(), retention: 2 }
    }

    /// Whether periodic checkpointing is on.
    pub fn enabled(&self) -> bool {
        self.interval_ticks > 0
    }
}

/// Telemetry policy (see [`enblogue_telemetry`] and
/// `docs/OBSERVABILITY.md`).
///
/// On by default: recording is lock-free relaxed atomics into
/// preallocated cells, so the warm close stays allocation-free (pinned
/// by `crates/core/tests/close_allocs.rs`) and close throughput stays
/// within 3% of telemetry-off (asserted by `perf_close --test`). Off
/// mode hands every layer no-op handles whose record path is a single
/// predictable branch — and the timing views in
/// [`crate::stages::EngineMetrics`] then read zero. Like every other
/// execution knob, telemetry is invisible in results: rankings are
/// byte-identical on or off (pinned by `tests/stage_parity.rs`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Master switch for metric recording and the event journal.
    pub enabled: bool,
    /// Events retained by the in-memory journal ring (oldest are
    /// overwritten and counted as dropped beyond this).
    pub journal_capacity: usize,
    /// Dump the Prometheus text export and journal JSONL every this
    /// many closed ticks; `0` disables periodic dumps.
    pub dump_every_ticks: u64,
    /// Directory receiving `metrics.prom`, `metrics.jsonl` and
    /// `journal.jsonl` (overwritten per dump; created on first write).
    /// Must be non-empty when `dump_every_ticks` is set.
    pub dump_directory: String,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            journal_capacity: 1024,
            dump_every_ticks: 0,
            dump_directory: String::new(),
        }
    }
}

impl TelemetryConfig {
    /// The disabled policy: no recording, no journal, no dumps.
    pub fn off() -> Self {
        TelemetryConfig { enabled: false, ..TelemetryConfig::default() }
    }

    /// Enabled recording plus a periodic export dump every
    /// `interval_ticks` closed ticks into `directory`.
    pub fn dump_every(interval_ticks: u64, directory: impl Into<String>) -> Self {
        TelemetryConfig {
            dump_every_ticks: interval_ticks,
            dump_directory: directory.into(),
            ..TelemetryConfig::default()
        }
    }

    /// Whether periodic export dumps are on.
    pub fn dumps_enabled(&self) -> bool {
        self.enabled && self.dump_every_ticks > 0
    }
}

/// Event-time ingestion policy: out-of-order arrivals with a bounded
/// lateness watermark (see `docs/EVENT_TIME.md` and
/// [`enblogue_ingest::reorder`]).
///
/// Off by default — the engine then requires timestamp-sorted feeds
/// exactly as before, byte-identical to every prior release (pinned by
/// `tests/stage_parity.rs`). When enabled, the replay/ingest surfaces
/// route documents through a [`enblogue_ingest::ReorderBuffer`]: a tick
/// closes only once the arrival-driven low watermark
/// (`max event tick seen − bounded_lateness`) passes it, late arrivals
/// are re-sequenced into their true event tick, and anything later than
/// the bound is dropped with full accounting
/// ([`crate::stages::EngineCounters::docs_late_dropped`], the
/// `ingest.late_drops` counter, and `late_drop` journal events). The
/// layer is **invisible on clean input**: an already-sorted stream
/// produces byte-identical rankings with it on or off. Buffer state
/// (pending documents included) rides through [`crate::snapshot`], so
/// crash recovery stays exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventTimeConfig {
    /// Master switch for the reordering buffer.
    pub enabled: bool,
    /// How many ticks an arrival may lag the maximum event tick seen and
    /// still be folded into its true tick; later documents drop. `0`
    /// means "arrival order must already respect tick order" (stragglers
    /// within the newest tick are still fine).
    pub bounded_lateness: u64,
    /// Hard cap on documents held by the buffer (memory bound for
    /// streams whose watermark stalls); excess arrivals drop into
    /// [`crate::stages::EngineCounters::docs_buffer_overflow`]. Must be
    /// positive when enabled.
    pub max_buffered_docs: usize,
}

impl Default for EventTimeConfig {
    fn default() -> Self {
        EventTimeConfig { enabled: false, bounded_lateness: 2, max_buffered_docs: 1_000_000 }
    }
}

impl EventTimeConfig {
    /// The disabled policy (feeds must be timestamp-sorted).
    pub fn disabled() -> Self {
        EventTimeConfig::default()
    }

    /// Enabled with the given lateness bound (in ticks) and the default
    /// buffer cap.
    pub fn bounded(bounded_lateness: u64) -> Self {
        EventTimeConfig { enabled: true, bounded_lateness, ..EventTimeConfig::default() }
    }
}

/// Source-guard policy: exact-duplicate rejection and per-source flood
/// caps in front of the seed/pair stages (see
/// [`enblogue_ingest::guard`] and `docs/EVENT_TIME.md`).
///
/// Off by default and byte-identical to prior behavior when off. When
/// enabled, every document entering the stages is judged once: an
/// exact-duplicate `(source, doc)` observation within
/// `dedup_window_ticks` is rejected, then the source's token bucket
/// (capacity `rate_burst`, refilled `rate_limit_per_tick` tokens per
/// event tick) must cover it — so a flooding or replaying source
/// degrades alone instead of hijacking the shift scores. On a
/// duplicate-free stream whose per-source rate stays under the cap the
/// guard admits everything and rankings are byte-identical to guard-off
/// (pinned by `tests/stage_parity.rs`). Guard state rides through
/// [`crate::snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceGuardConfig {
    /// Master switch for both checks.
    pub enabled: bool,
    /// Reject an admitted `(source, doc)` key re-observed within this
    /// many ticks; `0` disables deduplication.
    pub dedup_window_ticks: u64,
    /// Tokens refilled per event tick and spent one per admitted
    /// document; `0.0` disables the rate cap. Must be finite and ≥ 0.
    pub rate_limit_per_tick: f64,
    /// Bucket capacity (burst allowance) new sources start with; `0.0`
    /// means "same as `rate_limit_per_tick`". Must be finite and ≥ 0.
    pub rate_burst: f64,
}

impl Default for SourceGuardConfig {
    fn default() -> Self {
        SourceGuardConfig {
            enabled: false,
            dedup_window_ticks: 24,
            rate_limit_per_tick: 0.0,
            rate_burst: 0.0,
        }
    }
}

impl SourceGuardConfig {
    /// The disabled policy (every document is admitted).
    pub fn disabled() -> Self {
        SourceGuardConfig::default()
    }

    /// The effective bucket capacity: `rate_burst`, falling back to one
    /// tick's refill when unset.
    pub fn effective_burst(&self) -> f64 {
        if self.rate_burst > 0.0 {
            self.rate_burst
        } else {
            self.rate_limit_per_tick
        }
    }
}

/// Full engine configuration. Build with [`EnBlogueConfig::builder`].
///
/// Two kinds of knobs live here. *Semantic* knobs (tick width, window
/// length, seed selection, correlation measure, predictor, half-life,
/// `k`, support thresholds, the tracked-pair cap) change what the engine
/// computes. *Execution* knobs (`shards`, `parallel_close`,
/// `ingest_workers`, `rebalance`, `scoring_mode`) only change how the
/// work is laid out —
/// rankings are byte-identical for any setting of them, and their
/// defaults derive from the machine's available parallelism.
///
/// # Example
///
/// ```
/// use enblogue_core::config::EnBlogueConfig;
/// use enblogue_types::TickSpec;
///
/// let config = EnBlogueConfig::builder()
///     .tick_spec(TickSpec::hourly())
///     .window_ticks(8)
///     .top_k(5)
///     .build()
///     .expect("validated");
/// assert_eq!(config.k, 5);
/// assert!(config.shards >= 1, "execution defaults follow the hardware");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnBlogueConfig {
    /// Tick width (stream-time discretisation).
    pub tick_spec: TickSpec,
    /// Correlation window length in ticks.
    pub window_ticks: usize,
    /// Number of seed tags selected per tick.
    pub seed_count: usize,
    /// Seed selection strategy.
    pub seed_strategy: SeedStrategy,
    /// Minimum windowed count for a tag to qualify as seed.
    pub min_seed_count: u64,
    /// Correlation measure.
    pub measure: MeasureKind,
    /// Shift predictor.
    pub predictor: PredictorKind,
    /// Prediction-error normalisation.
    pub normalization: ErrorNormalization,
    /// Score half-life in milliseconds (paper: ≈ 2 days).
    pub half_life_ms: u64,
    /// Ranking depth (top-k emergent topics reported).
    pub k: usize,
    /// Minimum windowed co-occurrence count to keep tracking a pair.
    pub min_pair_support: u64,
    /// Merge entity annotations into the tag space ("tag/entity mixtures
    /// as emergent topics", §3).
    pub use_entities: bool,
    /// Hard cap on concurrently tracked pairs (memory bound); the lowest-
    /// scored pairs are evicted beyond it.
    pub max_tracked_pairs: usize,
    /// Shard-store pool size of the pair registry. Routing goes through
    /// the versioned [`enblogue_types::RoutingTable`] slot grid (keys
    /// hash onto slots with [`enblogue_types::shard_of_packed`]; slots
    /// map to stores, and the [`EnBlogueConfig::rebalance`] policy may
    /// re-target them at tick close). Sharding is pure state
    /// partitioning — rankings are identical for any pool size — but it
    /// lets tick close fan out shard-parallel and bounds per-store map
    /// sizes. 1 = the classic single-map registry.
    pub shards: usize,
    /// Fan tick close out over one scoped thread per shard. Only useful
    /// with `shards > 1`; results are identical either way (workers own
    /// disjoint shards and the scorer is shared read-only).
    pub parallel_close: bool,
    /// Partitioning worker threads for batched ingestion
    /// (`enblogue-ingest`). Results are identical for any count; this only
    /// sets the default pool size of ingestion pipelines driven off this
    /// engine.
    pub ingest_workers: usize,
    /// Load-aware shard rebalancing policy (dynamic active store count +
    /// hot-slot re-spreading under the `max_tracked_pairs` cap). Another
    /// pure execution knob: rankings are byte-identical with any policy,
    /// including disabled.
    pub rebalance: RebalanceConfig,
    /// Periodic checkpointing of the full engine state for failover (see
    /// [`crate::snapshot`]). Off by default; also a pure execution knob —
    /// rankings are byte-identical with any policy.
    pub snapshot: SnapshotConfig,
    /// Close-scoring execution path: lane-tiled batch kernels (the
    /// default) or the per-pair scalar reference walk. Another pure
    /// execution knob — rankings are byte-identical in either mode
    /// (pinned by `tests/stage_parity.rs`).
    pub scoring_mode: ScoringMode,
    /// Observability policy: lock-free metrics, latency histograms, the
    /// event journal, and periodic export dumps (see
    /// [`crate::engine::EnBlogueEngine::telemetry`]). On by default and,
    /// like every execution knob, invisible in rankings.
    pub telemetry: TelemetryConfig,
    /// Out-of-order event-time ingestion with a bounded-lateness
    /// watermark. Off by default; invisible on clean (already-sorted)
    /// input when on.
    pub event_time: EventTimeConfig,
    /// Per-source dedup window and token-bucket flood caps. Off by
    /// default; invisible on duplicate-free, under-rate input when on.
    pub source_guard: SourceGuardConfig,
}

impl Default for EnBlogueConfig {
    fn default() -> Self {
        EnBlogueConfig {
            tick_spec: TickSpec::hourly(),
            window_ticks: 24,
            seed_count: 50,
            seed_strategy: SeedStrategy::Popularity,
            min_seed_count: 3,
            measure: MeasureKind::default(),
            predictor: PredictorKind::default(),
            normalization: ErrorNormalization::Absolute,
            half_life_ms: 2 * Timestamp::DAY,
            k: 10,
            min_pair_support: 2,
            use_entities: true,
            max_tracked_pairs: 100_000,
            // Execution defaults are derived from the machine rather than
            // hard-coded: the BENCH_tick_close rows show shard-parallel
            // close winning from 2 cores up, and sharding/parallelism are
            // pure execution knobs (rankings identical either way, pinned
            // by tests/stage_parity.rs), so the defaults can follow the
            // hardware. Shards are capped at 16 — beyond the benched range
            // the per-shard maps get too small to amortise fan-out.
            shards: default_parallelism().min(16),
            parallel_close: default_parallelism() > 1,
            ingest_workers: default_parallelism(),
            // Rebalancing is on by default: with the machine-derived
            // single-shard pool of a 1-core box it is inert, and on
            // multi-core pools it only ever migrates state (never
            // results). `min_active_shards` stays on automatic and
            // resolves against `parallel_close` when the registry is
            // built.
            rebalance: RebalanceConfig::default(),
            snapshot: SnapshotConfig::default(),
            scoring_mode: ScoringMode::default(),
            telemetry: TelemetryConfig::default(),
            event_time: EventTimeConfig::default(),
            source_guard: SourceGuardConfig::default(),
        }
    }
}

impl EnBlogueConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> EnBlogueConfigBuilder {
        EnBlogueConfigBuilder { config: EnBlogueConfig::default() }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), EnBlogueError> {
        if self.window_ticks < 2 {
            return Err(EnBlogueError::invalid_config(
                "window_ticks",
                "the correlation window must span at least 2 ticks",
            ));
        }
        if self.seed_count == 0 {
            return Err(EnBlogueError::invalid_config(
                "seed_count",
                "must select at least one seed",
            ));
        }
        if self.k == 0 {
            return Err(EnBlogueError::invalid_config("k", "top-k must be positive"));
        }
        if self.half_life_ms == 0 {
            return Err(EnBlogueError::invalid_config(
                "half_life_ms",
                "half-life must be positive",
            ));
        }
        if self.max_tracked_pairs == 0 {
            return Err(EnBlogueError::invalid_config(
                "max_tracked_pairs",
                "pair cap must be positive",
            ));
        }
        if self.shards == 0 {
            return Err(EnBlogueError::invalid_config(
                "shards",
                "at least one pair shard is required",
            ));
        }
        if self.ingest_workers == 0 {
            return Err(EnBlogueError::invalid_config(
                "ingest_workers",
                "at least one ingest worker is required",
            ));
        }
        if self.rebalance.slots_per_shard == 0 {
            return Err(EnBlogueError::invalid_config(
                "rebalance.slots_per_shard",
                "the routing grid needs at least one slot per shard",
            ));
        }
        if self.rebalance.target_pairs_per_shard == 0 {
            return Err(EnBlogueError::invalid_config(
                "rebalance.target_pairs_per_shard",
                "the store sizing target must be positive",
            ));
        }
        if !(self.rebalance.min_skew.is_finite() && self.rebalance.min_skew >= 1.0) {
            return Err(EnBlogueError::invalid_config(
                "rebalance.min_skew",
                "the skew trigger is a max/mean ratio and must be ≥ 1",
            ));
        }
        if !(self.rebalance.cap_pressure > 0.0 && self.rebalance.cap_pressure <= 1.0) {
            return Err(EnBlogueError::invalid_config(
                "rebalance.cap_pressure",
                "cap pressure is a fraction of max_tracked_pairs in (0, 1]",
            ));
        }
        if self.rebalance.min_active_shards > self.shards {
            return Err(EnBlogueError::invalid_config(
                "rebalance.min_active_shards",
                "the active-store floor cannot exceed the shard pool",
            ));
        }
        if self.snapshot.enabled() && self.snapshot.directory.is_empty() {
            return Err(EnBlogueError::invalid_config(
                "snapshot.directory",
                "periodic checkpointing needs a target directory",
            ));
        }
        if self.telemetry.dump_every_ticks > 0 && self.telemetry.dump_directory.is_empty() {
            return Err(EnBlogueError::invalid_config(
                "telemetry.dump_directory",
                "periodic telemetry dumps need a target directory",
            ));
        }
        if self.snapshot.retention == 0 {
            return Err(EnBlogueError::invalid_config(
                "snapshot.retention",
                "at least the newest checkpoint must be retained",
            ));
        }
        if self.event_time.enabled && self.event_time.max_buffered_docs == 0 {
            return Err(EnBlogueError::invalid_config(
                "event_time.max_buffered_docs",
                "the reordering buffer needs room for at least one document",
            ));
        }
        if !(self.source_guard.rate_limit_per_tick.is_finite()
            && self.source_guard.rate_limit_per_tick >= 0.0)
        {
            return Err(EnBlogueError::invalid_config(
                "source_guard.rate_limit_per_tick",
                "the per-tick refill must be a finite non-negative number",
            ));
        }
        if !(self.source_guard.rate_burst.is_finite() && self.source_guard.rate_burst >= 0.0) {
            return Err(EnBlogueError::invalid_config(
                "source_guard.rate_burst",
                "the burst capacity must be a finite non-negative number",
            ));
        }
        if self.source_guard.enabled
            && self.source_guard.rate_limit_per_tick > 0.0
            && self.source_guard.effective_burst() < 1.0
        {
            return Err(EnBlogueError::invalid_config(
                "source_guard.rate_burst",
                "with the rate cap on, the bucket must hold at least one token",
            ));
        }
        if let SeedStrategy::Hybrid { popularity_weight } = self.seed_strategy {
            if !(0.0..=1.0).contains(&popularity_weight) {
                return Err(EnBlogueError::invalid_config(
                    "seed_strategy",
                    "hybrid popularity weight must be in [0, 1]",
                ));
            }
        }
        if let SeedStrategy::SketchPopularity { capacity } = self.seed_strategy {
            if capacity < self.seed_count {
                return Err(EnBlogueError::invalid_config(
                    "seed_strategy",
                    "sketch capacity must be at least seed_count",
                ));
            }
        }
        Ok(())
    }

    /// The correlation window expressed in milliseconds of stream time.
    pub fn window_ms(&self) -> u64 {
        self.window_ticks as u64 * self.tick_spec.width_ms()
    }
}

/// Builder for [`EnBlogueConfig`].
#[derive(Debug, Clone)]
pub struct EnBlogueConfigBuilder {
    config: EnBlogueConfig,
}

impl EnBlogueConfigBuilder {
    /// Sets the tick width.
    #[must_use]
    pub fn tick_spec(mut self, spec: TickSpec) -> Self {
        self.config.tick_spec = spec;
        self
    }

    /// Sets the correlation window length in ticks.
    #[must_use]
    pub fn window_ticks(mut self, ticks: usize) -> Self {
        self.config.window_ticks = ticks;
        self
    }

    /// Sets the number of seeds.
    #[must_use]
    pub fn seed_count(mut self, s: usize) -> Self {
        self.config.seed_count = s;
        self
    }

    /// Sets the seed strategy.
    #[must_use]
    pub fn seed_strategy(mut self, strategy: SeedStrategy) -> Self {
        self.config.seed_strategy = strategy;
        self
    }

    /// Sets the minimum windowed count for seeds.
    #[must_use]
    pub fn min_seed_count(mut self, count: u64) -> Self {
        self.config.min_seed_count = count;
        self
    }

    /// Sets the correlation measure.
    #[must_use]
    pub fn measure(mut self, measure: MeasureKind) -> Self {
        self.config.measure = measure;
        self
    }

    /// Sets the shift predictor.
    #[must_use]
    pub fn predictor(mut self, predictor: PredictorKind) -> Self {
        self.config.predictor = predictor;
        self
    }

    /// Sets the error normalisation.
    #[must_use]
    pub fn normalization(mut self, normalization: ErrorNormalization) -> Self {
        self.config.normalization = normalization;
        self
    }

    /// Sets the score half-life.
    #[must_use]
    pub fn half_life_ms(mut self, ms: u64) -> Self {
        self.config.half_life_ms = ms;
        self
    }

    /// Sets the ranking depth k.
    #[must_use]
    pub fn top_k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Sets the minimum pair support.
    #[must_use]
    pub fn min_pair_support(mut self, support: u64) -> Self {
        self.config.min_pair_support = support;
        self
    }

    /// Enables/disables entity merging.
    #[must_use]
    pub fn use_entities(mut self, yes: bool) -> Self {
        self.config.use_entities = yes;
        self
    }

    /// Sets the tracked-pair cap.
    #[must_use]
    pub fn max_tracked_pairs(mut self, cap: usize) -> Self {
        self.config.max_tracked_pairs = cap;
        self
    }

    /// Sets the number of pair-state hash shards.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Enables/disables shard-parallel tick close.
    #[must_use]
    pub fn parallel_close(mut self, yes: bool) -> Self {
        self.config.parallel_close = yes;
        self
    }

    /// Sets the ingestion partitioning worker count.
    #[must_use]
    pub fn ingest_workers(mut self, workers: usize) -> Self {
        self.config.ingest_workers = workers;
        self
    }

    /// Sets the close-scoring execution path.
    #[must_use]
    pub fn scoring_mode(mut self, mode: ScoringMode) -> Self {
        self.config.scoring_mode = mode;
        self
    }

    /// Sets the full shard-rebalancing policy.
    #[must_use]
    pub fn rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.config.rebalance = rebalance;
        self
    }

    /// Enables/disables shard rebalancing, keeping the policy's other
    /// knobs.
    #[must_use]
    pub fn rebalance_enabled(mut self, yes: bool) -> Self {
        self.config.rebalance.enabled = yes;
        self
    }

    /// Sets the full checkpointing policy.
    #[must_use]
    pub fn snapshot(mut self, snapshot: SnapshotConfig) -> Self {
        self.config.snapshot = snapshot;
        self
    }

    /// Checkpoint every `interval_ticks` closed ticks into `directory`
    /// (shorthand for [`SnapshotConfig::every`]).
    #[must_use]
    pub fn snapshot_every(mut self, interval_ticks: u64, directory: impl Into<String>) -> Self {
        self.config.snapshot = SnapshotConfig::every(interval_ticks, directory);
        self
    }

    /// Sets the full telemetry policy.
    #[must_use]
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Enables/disables telemetry recording, keeping the policy's other
    /// knobs.
    #[must_use]
    pub fn telemetry_enabled(mut self, yes: bool) -> Self {
        self.config.telemetry.enabled = yes;
        self
    }

    /// Dump telemetry exports every `interval_ticks` closed ticks into
    /// `directory` (shorthand for [`TelemetryConfig::dump_every`]).
    #[must_use]
    pub fn telemetry_dump_every(
        mut self,
        interval_ticks: u64,
        directory: impl Into<String>,
    ) -> Self {
        self.config.telemetry = TelemetryConfig::dump_every(interval_ticks, directory);
        self
    }

    /// Sets the full event-time policy.
    #[must_use]
    pub fn event_time(mut self, event_time: EventTimeConfig) -> Self {
        self.config.event_time = event_time;
        self
    }

    /// Enables out-of-order ingestion with the given lateness bound in
    /// ticks (shorthand for [`EventTimeConfig::bounded`]).
    #[must_use]
    pub fn bounded_lateness(mut self, ticks: u64) -> Self {
        self.config.event_time = EventTimeConfig::bounded(ticks);
        self
    }

    /// Sets the full source-guard policy.
    #[must_use]
    pub fn source_guard(mut self, source_guard: SourceGuardConfig) -> Self {
        self.config.source_guard = source_guard;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<EnBlogueConfig, EnBlogueError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(EnBlogueConfig::default().validate().is_ok());
        assert_eq!(
            EnBlogueConfig::default().half_life_ms,
            2 * Timestamp::DAY,
            "paper's 2-day half-life"
        );
    }

    #[test]
    fn builder_round_trips() {
        let config = EnBlogueConfig::builder()
            .tick_spec(TickSpec::minutely())
            .window_ticks(30)
            .seed_count(20)
            .top_k(7)
            .min_pair_support(4)
            .use_entities(false)
            .build()
            .unwrap();
        assert_eq!(config.window_ticks, 30);
        assert_eq!(config.k, 7);
        assert_eq!(config.min_pair_support, 4);
        assert!(!config.use_entities);
        assert_eq!(config.window_ms(), 30 * Timestamp::MINUTE);
    }

    #[test]
    fn sharding_round_trips() {
        let config = EnBlogueConfig::builder()
            .shards(8)
            .parallel_close(true)
            .ingest_workers(3)
            .scoring_mode(ScoringMode::Scalar)
            .build()
            .unwrap();
        assert_eq!(config.shards, 8);
        assert!(config.parallel_close);
        assert_eq!(config.ingest_workers, 3);
        assert_eq!(config.scoring_mode, ScoringMode::Scalar);
        assert_eq!(
            EnBlogueConfig::default().scoring_mode,
            ScoringMode::Batched,
            "batched scoring is the default"
        );
    }

    #[test]
    fn execution_defaults_follow_the_hardware() {
        let par = default_parallelism();
        let config = EnBlogueConfig::default();
        assert_eq!(config.shards, par.min(16), "shards picked from available parallelism");
        assert_eq!(config.parallel_close, par > 1, "parallel close on for multi-core machines");
        assert_eq!(config.ingest_workers, par);
        assert!(config.shards >= 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(EnBlogueConfig::builder().window_ticks(1).build().is_err());
        assert!(EnBlogueConfig::builder().seed_count(0).build().is_err());
        assert!(EnBlogueConfig::builder().top_k(0).build().is_err());
        assert!(EnBlogueConfig::builder().half_life_ms(0).build().is_err());
        assert!(EnBlogueConfig::builder().max_tracked_pairs(0).build().is_err());
        assert!(EnBlogueConfig::builder().shards(0).build().is_err());
        assert!(EnBlogueConfig::builder().ingest_workers(0).build().is_err());
        assert!(EnBlogueConfig::builder()
            .seed_strategy(SeedStrategy::Hybrid { popularity_weight: 1.5 })
            .build()
            .is_err());
        assert!(EnBlogueConfig::builder()
            .seed_count(50)
            .seed_strategy(SeedStrategy::SketchPopularity { capacity: 10 })
            .build()
            .is_err());
    }

    #[test]
    fn snapshot_config_round_trips_and_validates() {
        let config =
            EnBlogueConfig::builder().snapshot_every(50, "/var/lib/enblogue").build().unwrap();
        assert!(config.snapshot.enabled());
        assert_eq!(config.snapshot.interval_ticks, 50);
        assert_eq!(config.snapshot.directory, "/var/lib/enblogue");
        assert_eq!(config.snapshot.retention, 2, "default retention");
        assert!(!SnapshotConfig::disabled().enabled());

        // An interval without a directory is a configuration error.
        let err = EnBlogueConfig::builder()
            .snapshot(SnapshotConfig { interval_ticks: 5, directory: String::new(), retention: 2 })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("snapshot.directory"));
        // Retaining zero checkpoints would delete the one just written.
        let err = EnBlogueConfig::builder()
            .snapshot(SnapshotConfig { interval_ticks: 5, directory: "x".into(), retention: 0 })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("snapshot.retention"));
    }

    #[test]
    fn telemetry_config_round_trips_and_validates() {
        let config = EnBlogueConfig::default();
        assert!(config.telemetry.enabled, "telemetry records by default");
        assert_eq!(config.telemetry.dump_every_ticks, 0, "periodic dumps are opt-in");
        assert!(!TelemetryConfig::off().enabled);

        let config =
            EnBlogueConfig::builder().telemetry_dump_every(10, "/tmp/enblogue").build().unwrap();
        assert!(config.telemetry.dumps_enabled());
        assert_eq!(config.telemetry.dump_every_ticks, 10);
        assert_eq!(config.telemetry.dump_directory, "/tmp/enblogue");

        let off = EnBlogueConfig::builder().telemetry_enabled(false).build().unwrap();
        assert!(!off.telemetry.enabled);
        assert!(!off.telemetry.dumps_enabled());

        // A dump interval without a directory is a configuration error.
        let err = EnBlogueConfig::builder()
            .telemetry(TelemetryConfig { dump_every_ticks: 5, ..TelemetryConfig::default() })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("telemetry.dump_directory"));
    }

    #[test]
    fn event_time_and_guard_default_off_and_validate() {
        let config = EnBlogueConfig::default();
        assert!(!config.event_time.enabled, "event-time reordering is opt-in");
        assert!(!config.source_guard.enabled, "source guards are opt-in");

        let config = EnBlogueConfig::builder()
            .bounded_lateness(3)
            .source_guard(SourceGuardConfig {
                enabled: true,
                dedup_window_ticks: 12,
                rate_limit_per_tick: 50.0,
                rate_burst: 0.0,
            })
            .build()
            .unwrap();
        assert!(config.event_time.enabled);
        assert_eq!(config.event_time.bounded_lateness, 3);
        assert_eq!(config.source_guard.effective_burst(), 50.0, "burst falls back to the refill");

        let err = EnBlogueConfig::builder()
            .event_time(EventTimeConfig {
                enabled: true,
                bounded_lateness: 2,
                max_buffered_docs: 0,
            })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("event_time.max_buffered_docs"));
        let err = EnBlogueConfig::builder()
            .source_guard(SourceGuardConfig {
                rate_limit_per_tick: f64::NAN,
                ..SourceGuardConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("source_guard.rate_limit_per_tick"));
        let err = EnBlogueConfig::builder()
            .source_guard(SourceGuardConfig {
                enabled: true,
                dedup_window_ticks: 0,
                rate_limit_per_tick: 0.5,
                rate_burst: 0.0,
            })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("source_guard.rate_burst"));
    }

    #[test]
    fn error_messages_name_the_parameter() {
        let err = EnBlogueConfig::builder().window_ticks(0).build().unwrap_err();
        assert!(err.to_string().contains("window_ticks"));
    }

    #[test]
    fn measure_kind_names() {
        assert_eq!(MeasureKind::default().name(), "jaccard");
        assert_eq!(MeasureKind::JsDivergence.name(), "jsd");
        assert_eq!(MeasureKind::Set(CorrelationMeasure::Cosine).name(), "cosine");
    }
}
