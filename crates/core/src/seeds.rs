//! Stage (i): seed tag selection.
//!
//! "Seed tags are used to trigger the computation in the following steps.
//! Seed tags can be determined based on different criteria, such as
//! popularity and volatility. We choose seed tags to be popular tags.
//! Popularity is easy to measure as it merely requires computing a
//! sliding-window average on the document stream." (§3(i))

use crate::config::SeedStrategy;
use crate::snapshot::{corrupt, SnapReader, SnapWriter};
use enblogue_types::{EnBlogueError, FxHashMap, FxHashSet, TagId, Tick};
use enblogue_window::{SlidingStats, SpaceSaving, WindowedCounter};

/// Tracks per-tag statistics and selects the seed set at each tick close.
pub struct SeedTracker {
    strategy: SeedStrategy,
    seed_count: usize,
    min_seed_count: u64,
    /// Exact windowed per-tag document counts.
    counts: WindowedCounter<TagId>,
    /// Per-tag per-tick count history (for volatility); lazily created.
    volatility: FxHashMap<TagId, SlidingStats>,
    /// Approximate counts (sketch strategies only).
    sketch: Option<SpaceSaving<TagId>>,
    /// Tag counts in the open tick (feeds volatility on close).
    current: FxHashMap<TagId, u64>,
    window_ticks: usize,
}

impl SeedTracker {
    /// A tracker windowed over `window_ticks`.
    pub fn new(
        strategy: SeedStrategy,
        seed_count: usize,
        min_seed_count: u64,
        window_ticks: usize,
    ) -> Self {
        let sketch = match strategy {
            SeedStrategy::SketchPopularity { capacity } => Some(SpaceSaving::new(capacity)),
            _ => None,
        };
        SeedTracker {
            strategy,
            seed_count,
            min_seed_count,
            counts: WindowedCounter::new(window_ticks),
            volatility: FxHashMap::default(),
            sketch,
            current: FxHashMap::default(),
            window_ticks,
        }
    }

    /// Records that `tag` annotated a document in `tick`.
    pub fn observe(&mut self, tick: Tick, tag: TagId) {
        self.counts.increment(tick, tag);
        *self.current.entry(tag).or_insert(0) += 1;
        if let Some(sketch) = &mut self.sketch {
            sketch.increment(tag);
        }
    }

    /// The exact windowed count of `tag`.
    pub fn windowed_count(&self, tag: TagId) -> u64 {
        self.counts.count(tag)
    }

    /// The sliding-window average (count / window ticks) of `tag`.
    pub fn window_average(&self, tag: TagId) -> f64 {
        self.counts.window_average(tag)
    }

    /// Number of distinct tags alive in the window.
    pub fn distinct_tags(&self) -> usize {
        self.counts.distinct_keys()
    }

    /// Closes `tick`: updates volatility histories and returns the seed
    /// set, selected over the window whose newest slot is `tick`.
    pub fn close_tick(&mut self, tick: Tick) -> FxHashSet<TagId> {
        // Ensure the window's newest slot is the closing tick even if no
        // document arrived in it (gap ticks must expire old counts).
        self.counts.advance_to(tick);
        // Volatility histories get this tick's count (zero for absent tags
        // that already have history).
        if matches!(self.strategy, SeedStrategy::Volatility | SeedStrategy::Hybrid { .. }) {
            let mut seen: Vec<(TagId, u64)> = self.current.iter().map(|(&t, &c)| (t, c)).collect();
            seen.sort_unstable_by_key(|&(t, _)| t);
            for (tag, count) in seen {
                self.volatility
                    .entry(tag)
                    .or_insert_with(|| SlidingStats::new(self.window_ticks))
                    .push(count as f64);
            }
            let absent: Vec<TagId> =
                self.volatility.keys().filter(|t| !self.current.contains_key(t)).copied().collect();
            for tag in absent {
                self.volatility.get_mut(&tag).expect("key from same map").push(0.0);
            }
            // Drop volatility state for tags that vanished from the window.
            self.volatility.retain(|tag, _| self.counts.count(*tag) > 0);
        }
        self.current.clear();
        self.select()
    }

    /// Serializes the tracker's complete state — windowed counts,
    /// volatility histories (with their *running* float sums, restored
    /// verbatim), the Space-Saving sketch, and open-tick counts — into
    /// `w` (sorted key order; see [`crate::snapshot`]).
    pub(crate) fn encode_snapshot(&self, w: &mut SnapWriter) {
        w.opt_tick(self.counts.newest_tick());
        let per_tick = self.counts.per_tick_counts();
        w.usize(per_tick.len());
        for mut entries in per_tick {
            entries.sort_unstable_by_key(|&(tag, _)| tag);
            w.usize(entries.len());
            for (tag, count) in entries {
                w.tag(tag);
                w.u64(count);
            }
        }
        let mut volatility: Vec<(TagId, &SlidingStats)> =
            self.volatility.iter().map(|(&t, s)| (t, s)).collect();
        volatility.sort_unstable_by_key(|&(t, _)| t);
        w.usize(volatility.len());
        for (tag, stats) in volatility {
            w.tag(tag);
            w.usize(stats.len());
            for value in stats.values() {
                w.f64(value);
            }
            let (sum, sum_sq) = stats.sums();
            w.f64(sum);
            w.f64(sum_sq);
        }
        match &self.sketch {
            Some(sketch) => {
                w.u8(1);
                w.u64(sketch.total());
                let entries = sketch.entries();
                w.usize(entries.len());
                for (tag, count, error) in entries {
                    w.tag(tag);
                    w.u64(count);
                    w.u64(error);
                }
            }
            None => w.u8(0),
        }
        let mut current: Vec<(TagId, u64)> = self.current.iter().map(|(&t, &c)| (t, c)).collect();
        current.sort_unstable_by_key(|&(t, _)| t);
        w.usize(current.len());
        for (tag, count) in current {
            w.tag(tag);
            w.u64(count);
        }
    }

    /// Rebuilds a tracker from [`SeedTracker::encode_snapshot`] output
    /// under the resuming configuration's seed parameters.
    pub(crate) fn decode_snapshot(
        r: &mut SnapReader<'_>,
        strategy: SeedStrategy,
        seed_count: usize,
        min_seed_count: u64,
        window_ticks: usize,
    ) -> Result<Self, EnBlogueError> {
        let newest = r.opt_tick()?;
        let ticks = r.seq(8)?;
        if ticks > window_ticks {
            return Err(corrupt(format!(
                "seed counter holds {ticks} tick maps, window spans {window_ticks}"
            )));
        }
        if newest.is_none() && ticks > 0 {
            return Err(corrupt("seed tick maps without a newest tick"));
        }
        let mut per_tick = Vec::with_capacity(ticks);
        for _ in 0..ticks {
            let entries = r.seq(12)?;
            let mut map = Vec::with_capacity(entries);
            for _ in 0..entries {
                let tag = r.tag()?;
                let count = r.u64()?;
                map.push((tag, count));
            }
            per_tick.push(map);
        }
        let counts = WindowedCounter::from_per_tick_counts(window_ticks, newest, per_tick);

        let mut volatility = FxHashMap::default();
        let vol_entries = r.seq(20)?;
        for _ in 0..vol_entries {
            let tag = r.tag()?;
            let values = r.seq(8)?;
            if values > window_ticks {
                return Err(corrupt(format!(
                    "volatility history of {values} values exceeds the {window_ticks}-tick window"
                )));
            }
            let mut history = Vec::with_capacity(values);
            for _ in 0..values {
                history.push(r.f64()?);
            }
            let sum = r.f64()?;
            let sum_sq = r.f64()?;
            volatility.insert(tag, SlidingStats::from_parts(window_ticks, history, sum, sum_sq));
        }

        let sketch = match r.u8()? {
            0 => None,
            1 => {
                let SeedStrategy::SketchPopularity { capacity } = strategy else {
                    return Err(EnBlogueError::SnapshotConfigMismatch(
                        "snapshot carries a seed sketch but the strategy uses exact counts".into(),
                    ));
                };
                let total = r.u64()?;
                let entries = r.seq(20)?;
                if entries > capacity {
                    return Err(corrupt(format!(
                        "sketch monitors {entries} tags, capacity is {capacity}"
                    )));
                }
                let mut monitored = Vec::with_capacity(entries);
                for _ in 0..entries {
                    let tag = r.tag()?;
                    let count = r.u64()?;
                    let error = r.u64()?;
                    monitored.push((tag, count, error));
                }
                Some(SpaceSaving::from_parts(capacity, total, monitored))
            }
            tag => return Err(corrupt(format!("invalid sketch tag {tag}"))),
        };
        if sketch.is_none() && matches!(strategy, SeedStrategy::SketchPopularity { .. }) {
            return Err(EnBlogueError::SnapshotConfigMismatch(
                "sketch-popularity strategy resumed from a snapshot without a sketch".into(),
            ));
        }

        let mut current = FxHashMap::default();
        let open = r.seq(12)?;
        for _ in 0..open {
            let tag = r.tag()?;
            let count = r.u64()?;
            current.insert(tag, count);
        }

        Ok(SeedTracker {
            strategy,
            seed_count,
            min_seed_count,
            counts,
            volatility,
            sketch,
            current,
            window_ticks,
        })
    }

    /// Selects the seed set from current statistics.
    fn select(&self) -> FxHashSet<TagId> {
        let qualifying = || self.counts.iter().filter(|&(_, c)| c >= self.min_seed_count);
        let mut seeds: Vec<TagId> = match self.strategy {
            SeedStrategy::Popularity => {
                let mut all: Vec<(TagId, u64)> = qualifying().collect();
                all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                all.truncate(self.seed_count);
                all.into_iter().map(|(t, _)| t).collect()
            }
            SeedStrategy::Volatility => {
                let mut all: Vec<(TagId, f64)> = qualifying()
                    .map(|(t, _)| {
                        let cv = self
                            .volatility
                            .get(&t)
                            .map_or(0.0, SlidingStats::coefficient_of_variation);
                        (t, cv)
                    })
                    .collect();
                all.sort_unstable_by(|a, b| {
                    b.1.partial_cmp(&a.1).expect("finite volatility").then(a.0.cmp(&b.0))
                });
                all.truncate(self.seed_count);
                all.into_iter().map(|(t, _)| t).collect()
            }
            SeedStrategy::Hybrid { popularity_weight } => {
                // Rank-normalised blend so the two scales are comparable.
                let mut by_pop: Vec<(TagId, u64)> = qualifying().collect();
                by_pop.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let n = by_pop.len().max(1) as f64;
                let mut blended: FxHashMap<TagId, f64> = FxHashMap::default();
                for (rank, &(tag, _)) in by_pop.iter().enumerate() {
                    let pop_score = 1.0 - rank as f64 / n;
                    blended.insert(tag, popularity_weight * pop_score);
                }
                let mut by_vol: Vec<(TagId, f64)> = by_pop
                    .iter()
                    .map(|&(t, _)| {
                        (
                            t,
                            self.volatility
                                .get(&t)
                                .map_or(0.0, SlidingStats::coefficient_of_variation),
                        )
                    })
                    .collect();
                by_vol.sort_unstable_by(|a, b| {
                    b.1.partial_cmp(&a.1).expect("finite volatility").then(a.0.cmp(&b.0))
                });
                for (rank, &(tag, _)) in by_vol.iter().enumerate() {
                    let vol_score = 1.0 - rank as f64 / n;
                    *blended.entry(tag).or_insert(0.0) += (1.0 - popularity_weight) * vol_score;
                }
                let mut all: Vec<(TagId, f64)> = blended.into_iter().collect();
                all.sort_unstable_by(|a, b| {
                    b.1.partial_cmp(&a.1).expect("finite blend").then(a.0.cmp(&b.0))
                });
                all.truncate(self.seed_count);
                all.into_iter().map(|(t, _)| t).collect()
            }
            SeedStrategy::SketchPopularity { .. } => {
                let sketch = self.sketch.as_ref().expect("sketch allocated for this strategy");
                sketch
                    .top_n(self.seed_count)
                    .into_iter()
                    .filter(|&(_, est)| est >= self.min_seed_count)
                    .map(|(t, _)| t)
                    .collect()
            }
        };
        seeds.sort_unstable();
        seeds.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(tracker: &mut SeedTracker, tick: u64, tag_counts: &[(u32, u64)]) -> FxHashSet<TagId> {
        for &(tag, count) in tag_counts {
            for _ in 0..count {
                tracker.observe(Tick(tick), TagId(tag));
            }
        }
        tracker.close_tick(Tick(tick))
    }

    #[test]
    fn popularity_selects_most_frequent() {
        let mut t = SeedTracker::new(SeedStrategy::Popularity, 2, 1, 4);
        let seeds = feed(&mut t, 0, &[(1, 10), (2, 5), (3, 1)]);
        assert!(seeds.contains(&TagId(1)));
        assert!(seeds.contains(&TagId(2)));
        assert!(!seeds.contains(&TagId(3)));
    }

    #[test]
    fn min_count_floor_applies() {
        let mut t = SeedTracker::new(SeedStrategy::Popularity, 5, 4, 4);
        let seeds = feed(&mut t, 0, &[(1, 10), (2, 3)]);
        assert_eq!(seeds.len(), 1, "tag 2 below floor");
        assert!(seeds.contains(&TagId(1)));
    }

    #[test]
    fn popularity_is_windowed() {
        let mut t = SeedTracker::new(SeedStrategy::Popularity, 1, 1, 2);
        feed(&mut t, 0, &[(1, 10)]);
        feed(&mut t, 1, &[(2, 3)]);
        // Window = 2 ticks: tag 1 (10) still beats tag 2 (3).
        let seeds = feed(&mut t, 2, &[(2, 3)]);
        // Tick 0 has expired: tag 2 has 6 in window, tag 1 has 0.
        assert!(seeds.contains(&TagId(2)), "expired popularity must not linger");
        assert_eq!(t.windowed_count(TagId(1)), 0);
    }

    #[test]
    fn window_average_matches_paper_definition() {
        let mut t = SeedTracker::new(SeedStrategy::Popularity, 5, 1, 4);
        feed(&mut t, 0, &[(1, 8)]);
        assert_eq!(t.window_average(TagId(1)), 2.0);
    }

    #[test]
    fn volatility_prefers_swinging_tags() {
        let mut t = SeedTracker::new(SeedStrategy::Volatility, 1, 1, 8);
        // Tag 1: constant 5/tick. Tag 2: alternating 1 and 9.
        for tick in 0..8u64 {
            let swing = if tick % 2 == 0 { 1 } else { 9 };
            feed(&mut t, tick, &[(1, 5), (2, swing)]);
        }
        let seeds = feed(&mut t, 8, &[(1, 5), (2, 1)]);
        assert!(seeds.contains(&TagId(2)), "volatile tag must win the single seed slot");
    }

    #[test]
    fn hybrid_blends_both_signals() {
        let mut t = SeedTracker::new(SeedStrategy::Hybrid { popularity_weight: 0.5 }, 2, 1, 8);
        // Tag 1: very popular, flat. Tag 2: volatile, mid volume.
        // Tag 3: unpopular and flat.
        for tick in 0..8u64 {
            let swing = if tick % 2 == 0 { 1 } else { 11 };
            feed(&mut t, tick, &[(1, 20), (2, swing), (3, 2)]);
        }
        let seeds = feed(&mut t, 8, &[(1, 20), (2, 1), (3, 2)]);
        assert!(seeds.contains(&TagId(1)));
        assert!(seeds.contains(&TagId(2)));
        assert!(!seeds.contains(&TagId(3)));
    }

    #[test]
    fn sketch_popularity_approximates_exact() {
        let mut exact = SeedTracker::new(SeedStrategy::Popularity, 5, 1, 4);
        let mut sketch = SeedTracker::new(SeedStrategy::SketchPopularity { capacity: 16 }, 5, 1, 4);
        // Heavy skew: tags 0-4 dominate a 40-tag universe.
        for tick in 0..4u64 {
            for tag in 0..5u32 {
                for _ in 0..50 {
                    exact.observe(Tick(tick), TagId(tag));
                    sketch.observe(Tick(tick), TagId(tag));
                }
            }
            for tag in 5..40u32 {
                exact.observe(Tick(tick), TagId(tag));
                sketch.observe(Tick(tick), TagId(tag));
            }
            let e = exact.close_tick(Tick(tick));
            let s = sketch.close_tick(Tick(tick));
            if tick > 0 {
                let overlap = e.intersection(&s).count();
                assert!(overlap >= 4, "sketch seeds diverged: {overlap}/5 overlap");
            }
        }
    }

    #[test]
    fn determinism_across_instances() {
        let run = || {
            let mut t = SeedTracker::new(SeedStrategy::Popularity, 3, 1, 4);
            let mut out = Vec::new();
            for tick in 0..5u64 {
                let mut seeds: Vec<TagId> =
                    feed(&mut t, tick, &[(1, 5), (2, 5), (3, 5), (4, 2)]).into_iter().collect();
                seeds.sort_unstable();
                out.push(seeds);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_stream_selects_nothing() {
        let mut t = SeedTracker::new(SeedStrategy::Popularity, 5, 1, 4);
        let seeds = t.close_tick(Tick(0));
        assert!(seeds.is_empty());
        assert_eq!(t.distinct_tags(), 0);
    }
}
