//! The stand-alone EnBlogue engine — a thin adapter over the shared
//! [`StagePipeline`].
//!
//! Feed documents with [`EnBlogueEngine::process_doc`] (or batched with
//! [`EnBlogueEngine::process_docs`]), close each tick with
//! [`EnBlogueEngine::close_tick`], and read the emergent-topic ranking
//! from the returned [`RankingSnapshot`]. [`EnBlogueEngine::run_replay`]
//! drives a whole archive in one call (the demo's "time lapse on archived
//! data").
//!
//! All tick semantics live in [`crate::stages`]; this type only provides
//! the classic engine-shaped API. The DAG operator
//! ([`crate::ops::EngineOp`]) wraps the *same* pipeline, so both execution
//! surfaces are a single implementation.

use crate::config::EnBlogueConfig;
use crate::ingest::ReplayIngest;
use crate::snapshot::SnapshotStats;
use crate::stages::StagePipeline;
use enblogue_ingest::pipeline::{IngestConfig, IngestPipeline, IngestStats};
use enblogue_types::{Document, EnBlogueError, RankingSnapshot, TagInterner, Tick};
use std::path::Path;

pub use crate::stages::{EngineCounters, EngineMetrics, EngineTimings};

/// The EnBlogue emergent-topic detection engine.
pub struct EnBlogueEngine {
    pipeline: StagePipeline,
}

impl EnBlogueEngine {
    /// Builds an engine from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (use
    /// [`EnBlogueConfig::builder`] to get a validated one).
    pub fn new(config: EnBlogueConfig) -> Self {
        EnBlogueEngine { pipeline: StagePipeline::new(config) }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EnBlogueConfig {
        self.pipeline.config()
    }

    /// The underlying stage pipeline (read access).
    pub fn pipeline(&self) -> &StagePipeline {
        &self.pipeline
    }

    /// Unwraps the engine into its stage pipeline (the DAG operator mounts
    /// engines this way).
    pub fn into_pipeline(self) -> StagePipeline {
        self.pipeline
    }

    /// Appends a custom [`crate::stages::TickStage`] behind the standard
    /// ones (runs after `rank-emit`, so it sees each tick's finished
    /// snapshot). This is how the serving tier (`enblogue-serve`) mounts
    /// its publish stage on an engine.
    pub fn push_stage(&mut self, stage: Box<dyn crate::stages::TickStage>) {
        self.pipeline.push_stage(stage);
    }

    /// The engine's in-place [`crate::query::QueryView`] — the unified
    /// read surface (ranking, seeds, pair info/history). Use it, or an
    /// `enblogue-serve` `QueryHandle` implementing the same trait
    /// lock-free and concurrently; tests and tools needing raw pipeline
    /// reads can go through [`EnBlogueEngine::pipeline`].
    pub fn query_view(&self, interner: TagInterner) -> crate::query::EngineQuery<'_> {
        self.pipeline.query_view(interner)
    }

    /// Feeds one document (annotations counted into the open tick).
    ///
    /// Documents must arrive in non-decreasing timestamp order relative to
    /// closed ticks; feeding a document belonging to an already-closed
    /// tick is counted into the open tick's slot (windowed counters never
    /// move backwards).
    pub fn process_doc(&mut self, doc: &Document) {
        self.pipeline.process_doc(doc);
    }

    /// Batched ingestion of an open-tick document slice; semantically
    /// identical to per-document feeding (see
    /// [`StagePipeline::process_docs`] for the batching contract).
    pub fn process_docs(&mut self, docs: &[Document]) {
        self.pipeline.process_docs(docs);
    }

    /// Closes `tick`: selects seeds, discovers candidate pairs, updates
    /// correlations and shift scores, evicts stale pairs, and emits the
    /// top-k ranking.
    pub fn close_tick(&mut self, tick: Tick) -> RankingSnapshot {
        self.pipeline.close_tick(tick)
    }

    /// Replays a timestamp-sorted document slice, closing every tick in
    /// sequence (including empty gap ticks, so correlation histories stay
    /// tick-aligned). Returns one snapshot per closed tick.
    ///
    /// With [`crate::config::EventTimeConfig`] enabled the slice is
    /// treated as a raw *arrival* stream instead: it may be out of order,
    /// the reorder buffer re-sequences it, and the watermark drives the
    /// closes (see [`EnBlogueEngine::offer_doc`]).
    pub fn run_replay(&mut self, docs: &[Document]) -> Vec<RankingSnapshot> {
        self.pipeline.run_replay(docs)
    }

    /// Offers one arrival to the event-time front end: buffered until the
    /// watermark seals its tick, dropped if beyond the lateness bound,
    /// fed in true event-tick order otherwise; sealed ticks close
    /// immediately and `emit` receives their snapshots. With event time
    /// disabled this is the plain streaming feed (gap ticks close, then
    /// the document is processed). See [`StagePipeline::offer_doc`].
    pub fn offer_doc(&mut self, doc: &Document, emit: impl FnMut(RankingSnapshot)) {
        self.pipeline.offer_doc(doc, emit);
    }

    /// End of an event-time arrival stream: drains the reorder buffer and
    /// closes through the last tick that saw a document, emitting each
    /// snapshot. A no-op when event time is disabled.
    pub fn finish_stream(&mut self, emit: impl FnMut(RankingSnapshot)) {
        self.pipeline.finish_event_stream(emit);
    }

    /// [`EnBlogueEngine::run_replay`] through the shard-partitioned
    /// parallel ingestion subsystem (`enblogue-ingest`): documents are
    /// batched per tick, tokenized/pair-partitioned on a worker pool
    /// behind a bounded queue, and applied to the sharded pair state one
    /// worker per shard. Snapshots are byte-identical to the sequential
    /// replay for any batch size, queue depth, or worker count; a worker
    /// count of `0` uses the configuration's `ingest_workers`.
    ///
    /// # Panics
    /// Panics if `ingest` is invalid (check with
    /// [`IngestConfig::validate`] first to handle the error instead) or if
    /// `docs` is not timestamp-sorted.
    pub fn run_replay_ingest(
        &mut self,
        docs: &[Document],
        ingest: &IngestConfig,
    ) -> (Vec<RankingSnapshot>, IngestStats) {
        let mut resolved = ingest.clone();
        if resolved.workers == 0 {
            resolved.workers = self.pipeline.config().ingest_workers;
        }
        // Event-time mode: re-sequence the raw arrival stream through the
        // reorder buffer first (drops metered there), then drive the
        // batched pipeline over the sorted survivors — its sortedness
        // invariants hold again, and the source guard still judges every
        // document exactly once at the sink.
        let ordered;
        let docs = if self.pipeline.config().event_time.enabled {
            ordered = self.pipeline.resequence_arrivals(docs);
            ordered.as_slice()
        } else {
            docs
        };
        let mut driver = IngestPipeline::new(resolved);
        driver.attach_telemetry(self.pipeline.telemetry());
        let mut sink = ReplayIngest::new(&mut self.pipeline);
        let stats = driver.run(&mut sink, docs);
        (sink.into_snapshots(), stats)
    }

    /// Serializes the complete engine state to `path` — a length-prefixed,
    /// checksummed binary snapshot, written atomically (temp file +
    /// rename). See [`crate::snapshot`] for the format and
    /// [`EnBlogueEngine::resume`] for the other half.
    ///
    /// Valid at any point in the stream; for periodic tick-aligned
    /// checkpoints configure [`crate::config::SnapshotConfig`] instead and
    /// the pipeline writes them itself at tick close.
    ///
    /// # Errors
    /// Filesystem failures surface as [`EnBlogueError::SnapshotIo`].
    pub fn checkpoint(&mut self, path: impl AsRef<Path>) -> Result<SnapshotStats, EnBlogueError> {
        self.pipeline.checkpoint_to(path.as_ref())
    }

    /// Restores an engine from a snapshot file taken under the same
    /// configuration (`config` is fingerprint-checked against the
    /// snapshot; only the snapshot section itself may differ). The
    /// restored engine continues exactly where the checkpoint left off:
    /// replay the tail of the stream — documents after the checkpoint
    /// tick — through [`EnBlogueEngine::run_replay`] or
    /// [`EnBlogueEngine::run_replay_ingest`] and rankings are
    /// byte-identical to an uninterrupted run (pinned by
    /// `tests/stage_parity.rs`).
    ///
    /// # Errors
    /// Truncated or corrupted files surface as
    /// [`EnBlogueError::SnapshotCorrupt`], incompatible format versions as
    /// [`EnBlogueError::SnapshotVersionMismatch`], configuration drift as
    /// [`EnBlogueError::SnapshotConfigMismatch`], and filesystem failures
    /// as [`EnBlogueError::SnapshotIo`] — never a panic.
    pub fn resume(config: EnBlogueConfig, path: impl AsRef<Path>) -> Result<Self, EnBlogueError> {
        Ok(EnBlogueEngine { pipeline: StagePipeline::resume_from(config, path.as_ref())? })
    }

    /// Crash recovery: [`EnBlogueEngine::resume`] from the newest
    /// *readable* `checkpoint-<tick>.snap` in `dir` (as written by the
    /// periodic checkpoint stage). An unreadable newest file — bit rot, a
    /// torn write from a power loss — falls back to the next-older
    /// checkpoint: surviving exactly that failure is why the retention
    /// policy keeps more than one.
    ///
    /// # Errors
    /// [`EnBlogueError::NotFound`] if the directory holds no checkpoint;
    /// otherwise, when every checkpoint fails to restore, the error of
    /// the newest one (see [`EnBlogueEngine::resume`] for the kinds).
    pub fn resume_latest(
        config: EnBlogueConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, EnBlogueError> {
        let dir = dir.as_ref();
        let files = crate::snapshot::list_checkpoints(dir)?;
        if files.is_empty() {
            return Err(EnBlogueError::NotFound(format!(
                "no checkpoint files in {}",
                dir.display()
            )));
        }
        let mut newest_error = None;
        for path in files.iter().rev() {
            match EnBlogueEngine::resume(config.clone(), path) {
                Ok(engine) => return Ok(engine),
                Err(err) => {
                    newest_error.get_or_insert(err);
                }
            }
        }
        Err(newest_error.expect("at least one resume attempt"))
    }

    /// Run-time counters.
    pub fn metrics(&self) -> EngineMetrics {
        self.pipeline.metrics()
    }

    /// The engine's telemetry hub: latency histograms, counters, the
    /// event journal, and the Prometheus/JSONL exporters (see
    /// `docs/OBSERVABILITY.md`). Inert when
    /// [`crate::config::TelemetryConfig::enabled`] is off.
    pub fn telemetry(&self) -> &enblogue_telemetry::Telemetry {
        self.pipeline.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeedStrategy;
    use enblogue_types::{TagId, TagPair, TickSpec, Timestamp};

    fn config() -> EnBlogueConfig {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::hourly())
            .window_ticks(6)
            .seed_count(8)
            .min_seed_count(2)
            .top_k(5)
            .min_pair_support(1)
            .build()
            .unwrap()
    }

    fn doc(id: u64, hour: u64, tags: &[u32]) -> Document {
        Document::builder(id, Timestamp::from_hours(hour))
            .tags(tags.iter().map(|&t| TagId(t)))
            .build()
    }

    /// Streams `per_tick` copies of each tag set per tick over `ticks`.
    fn stream(
        engine: &mut EnBlogueEngine,
        ticks: std::ops::Range<u64>,
        per_tick: usize,
        sets: &[&[u32]],
    ) {
        let mut id = 1_000_000;
        for t in ticks {
            for _ in 0..per_tick {
                for set in sets {
                    id += 1;
                    engine.process_doc(&doc(id, t, set));
                }
            }
            engine.close_tick(Tick(t));
        }
    }

    #[test]
    fn emergent_pair_reaches_top_rank() {
        let mut engine = EnBlogueEngine::new(config());
        // Background: tags 1 and 2 each popular, never together.
        stream(&mut engine, 0..10, 5, &[&[1], &[2], &[3]]);
        assert!(engine.pipeline().is_seed(TagId(1)) && engine.pipeline().is_seed(TagId(2)));
        let quiet = engine.pipeline().latest_snapshot().unwrap().clone();
        assert!(quiet.ranked.is_empty(), "no shift during background: {quiet:?}");

        // Event: tags 1 and 2 suddenly co-occur.
        stream(&mut engine, 10..12, 5, &[&[1, 2], &[3]]);
        let snap = engine.pipeline().latest_snapshot().unwrap();
        let pair = TagPair::new(TagId(1), TagId(2));
        assert_eq!(snap.ranked[0].0, pair, "the correlated pair must rank first: {snap:?}");
        assert!(snap.ranked[0].1 > 0.1);
    }

    #[test]
    fn popular_tag_peak_alone_does_not_alarm() {
        // The Figure-1 control: a solo burst of a popular tag must not
        // create emergent topics.
        let mut engine = EnBlogueEngine::new(config());
        stream(&mut engine, 0..10, 5, &[&[1], &[2]]);
        // Tag 1 volume triples; co-occurrence unchanged (none).
        stream(&mut engine, 10..13, 15, &[&[1]]);
        let snap = engine.pipeline().latest_snapshot().unwrap();
        assert!(
            snap.ranked.is_empty(),
            "solo popularity peaks are not correlation shifts: {snap:?}"
        );
    }

    #[test]
    fn pairs_need_a_seed_to_be_tracked() {
        let mut engine = EnBlogueEngine::new(config());
        // Tags 10, 11 co-occur but are far too rare to be seeds (1/tick
        // against seeds at 5/tick, with the 8 seed slots filled by tags
        // 1-8). Tags 1 and 2 also co-occur, and 1 is a seed.
        let sets: &[&[u32]] = &[&[1], &[2], &[3], &[4], &[5], &[6], &[7], &[8], &[1, 2], &[10, 11]];
        stream(&mut engine, 0..6, 5, sets);
        assert!(!engine.pipeline().is_seed(TagId(10)));
        let pair = TagPair::new(TagId(10), TagId(11));
        assert!(engine.pipeline().pair_info(pair).is_none(), "seedless pair must not be tracked");
        let m = engine.metrics();
        assert!(m.pairs_discovered > 0, "seeded pairs are tracked");
        assert!(engine.pipeline().pair_info(TagPair::new(TagId(1), TagId(2))).is_some());
    }

    #[test]
    fn run_replay_closes_gap_ticks() {
        let mut engine = EnBlogueEngine::new(config());
        let docs = vec![doc(1, 0, &[1, 2]), doc(2, 0, &[1, 2]), doc(3, 4, &[1, 2])];
        let snapshots = engine.run_replay(&docs);
        assert_eq!(snapshots.len(), 5, "ticks 0..=4 all closed");
        assert_eq!(snapshots[0].tick, Tick(0));
        assert_eq!(snapshots[4].tick, Tick(4));
        assert_eq!(engine.metrics().docs_processed, 3);
    }

    #[test]
    fn process_docs_batches_match_single_feeding() {
        let docs: Vec<Document> =
            (0..30).map(|i| doc(i, i / 10, &[1, 2, (i % 3) as u32 + 3])).collect();
        let mut batched = EnBlogueEngine::new(config());
        batched.process_docs(&docs[..10]);
        batched.close_tick(Tick(0));
        batched.process_docs(&docs[10..20]);
        batched.close_tick(Tick(1));
        batched.process_docs(&docs[20..]);
        let last_batched = batched.close_tick(Tick(2));

        let mut single = EnBlogueEngine::new(config());
        let snapshots = single.run_replay(&docs);
        assert_eq!(last_batched, *snapshots.last().unwrap());
        assert_eq!(batched.metrics(), single.metrics());
    }

    #[test]
    fn entities_participate_when_enabled() {
        let mut engine = EnBlogueEngine::new(config());
        let mut id = 0;
        for t in 0..8u64 {
            for _ in 0..5 {
                id += 1;
                let mut d = doc(id, t, &[1]);
                if t >= 6 {
                    d.entities.push(TagId(99));
                    d.normalize();
                }
                engine.process_doc(&d);
            }
            engine.close_tick(Tick(t));
        }
        let pair = TagPair::new(TagId(1), TagId(99));
        assert!(engine.pipeline().pair_info(pair).is_some(), "tag/entity mixture must be tracked");
    }

    #[test]
    fn entities_ignored_when_disabled() {
        let mut cfg = config();
        cfg.use_entities = false;
        let mut engine = EnBlogueEngine::new(cfg);
        let mut id = 0;
        for t in 0..8u64 {
            for _ in 0..5 {
                id += 1;
                let mut d = doc(id, t, &[1]);
                d.entities.push(TagId(99));
                d.normalize();
                engine.process_doc(&d);
            }
            engine.close_tick(Tick(t));
        }
        assert!(engine.pipeline().pair_info(TagPair::new(TagId(1), TagId(99))).is_none());
    }

    #[test]
    fn eviction_bounds_state() {
        let mut engine = EnBlogueEngine::new(config());
        // A pair appears for two ticks then vanishes.
        stream(&mut engine, 0..2, 5, &[&[1, 2]]);
        assert_eq!(engine.metrics().pairs_tracked, 1);
        stream(&mut engine, 2..20, 5, &[&[1], &[2]]);
        assert_eq!(engine.metrics().pairs_tracked, 0, "stale pair must be evicted");
        assert_eq!(engine.metrics().pairs_evicted, 1);
    }

    #[test]
    fn volatility_strategy_runs_end_to_end() {
        let mut cfg = config();
        cfg.seed_strategy = SeedStrategy::Volatility;
        let mut engine = EnBlogueEngine::new(cfg);
        stream(&mut engine, 0..10, 3, &[&[1], &[2], &[1, 2]]);
        assert!(engine.metrics().ticks_closed == 10);
    }

    #[test]
    fn deterministic_rankings() {
        let run = || {
            let mut engine = EnBlogueEngine::new(config());
            stream(&mut engine, 0..8, 4, &[&[1], &[2], &[3, 1]]);
            stream(&mut engine, 8..10, 4, &[&[1, 2], &[3]]);
            engine.pipeline().latest_snapshot().unwrap().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_replay_ingest_matches_run_replay() {
        let docs: Vec<Document> =
            (0..120).map(|i| doc(i, i / 20, &[(i % 5) as u32, (i % 3) as u32 + 5])).collect();
        let mut sequential = EnBlogueEngine::new(config());
        let baseline = sequential.run_replay(&docs);
        for (batch_size, workers) in [(1usize, 2usize), (32, 0), (512, 4)] {
            let mut engine = EnBlogueEngine::new(config());
            let ingest = enblogue_ingest::IngestConfig { batch_size, queue_depth: 4, workers };
            let (snapshots, stats) = engine.run_replay_ingest(&docs, &ingest);
            assert_eq!(snapshots, baseline, "batch={batch_size} workers={workers}");
            assert_eq!(stats.docs, 120);
            if workers == 0 {
                assert_eq!(
                    stats.workers,
                    engine.config().ingest_workers,
                    "auto worker count comes from the engine configuration"
                );
            }
            assert_eq!(engine.metrics(), sequential.metrics());
        }
    }

    #[test]
    fn sharded_engines_match_the_unsharded_baseline() {
        let run = |shards: usize, parallel: bool| {
            let cfg = EnBlogueConfig::builder()
                .tick_spec(TickSpec::hourly())
                .window_ticks(6)
                .seed_count(8)
                .min_seed_count(2)
                .top_k(5)
                .min_pair_support(1)
                .shards(shards)
                .parallel_close(parallel)
                .build()
                .unwrap();
            let mut engine = EnBlogueEngine::new(cfg);
            stream(&mut engine, 0..8, 4, &[&[1], &[2], &[3], &[1, 3]]);
            stream(&mut engine, 8..10, 4, &[&[1, 2], &[3]]);
            engine.pipeline().latest_snapshot().unwrap().clone()
        };
        let baseline = run(1, false);
        assert!(!baseline.ranked.is_empty());
        for shards in [4usize, 16] {
            assert_eq!(run(shards, false), baseline, "{shards} shards");
            assert_eq!(run(shards, true), baseline, "{shards} shards, parallel close");
        }
    }

    /// Snapshot activity counters are process-local; zero them so
    /// checkpointing/restored engines compare equal to uninterrupted ones
    /// on the semantic counters. (Timings never participate in metrics
    /// equality — see [`EngineMetrics`] — so only counters need scrubbing.)
    fn scrub_snapshot_counters(mut m: EngineMetrics) -> EngineMetrics {
        m.snapshots_taken = 0;
        m.snapshot_bytes_written = 0;
        m.snapshot_failures = 0;
        m.restores = 0;
        m
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("enblogue-engine-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpoint_resume_continues_byte_identically() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("mid.snap");
        let sets: &[&[u32]] = &[&[1], &[2], &[3], &[1, 3]];

        // Uninterrupted reference.
        let mut uninterrupted = EnBlogueEngine::new(config());
        stream(&mut uninterrupted, 0..6, 4, sets);
        stream(&mut uninterrupted, 6..10, 4, &[&[1, 2], &[3]]);

        // Checkpoint at tick 5, "crash", resume, replay the tail.
        let mut crashed = EnBlogueEngine::new(config());
        stream(&mut crashed, 0..6, 4, sets);
        let stats = crashed.checkpoint(&path).unwrap();
        assert_eq!(stats.tick, Some(Tick(5)));
        assert!(stats.bytes > 0 && stats.tracked_pairs > 0);
        drop(crashed);

        let mut resumed = EnBlogueEngine::resume(config(), &path).unwrap();
        assert_eq!(resumed.metrics().restores, 1);
        stream(&mut resumed, 6..10, 4, &[&[1, 2], &[3]]);

        assert_eq!(
            resumed.pipeline().latest_snapshot(),
            uninterrupted.pipeline().latest_snapshot()
        );
        assert_eq!(
            scrub_snapshot_counters(resumed.metrics()),
            scrub_snapshot_counters(uninterrupted.metrics()),
            "every semantic counter must survive the round trip"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_run_replay_closes_leading_gap_ticks() {
        // Tail docs that skip ticks after the checkpoint: the resumed
        // replay must close the gap ticks first, like an uninterrupted
        // run would have.
        let docs: Vec<Document> =
            (0..20).map(|i| doc(i, if i < 10 { i / 5 } else { 6 + i / 10 }, &[1, 2])).collect();
        let mut uninterrupted = EnBlogueEngine::new(config());
        let baseline = uninterrupted.run_replay(&docs);

        let dir = tmp_dir("gap");
        let path = dir.join("tick1.snap");
        let mut first = EnBlogueEngine::new(config());
        let head = first.run_replay(&docs[..10]); // closes ticks 0..=1
        assert_eq!(head.last().unwrap().tick, Tick(1));
        first.checkpoint(&path).unwrap();

        let mut resumed = EnBlogueEngine::resume(config(), &path).unwrap();
        let tail = resumed.run_replay(&docs[10..]); // docs resume at tick 7
        let mut all = head;
        all.extend(tail);
        assert_eq!(all, baseline, "gap ticks 2..=6 must close in the resumed run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_open_tick_checkpoint_resumes_byte_identically() {
        // Checkpoint *between* closes: documents of tick 0 are in the
        // open tick, nothing is closed yet. The resumed pipeline must
        // close that open tick (and the gap) exactly where the
        // uninterrupted run would, before any tail document counts.
        let head: Vec<Document> = (0..6).map(|i| doc(i, 0, &[1, 2, 3])).collect();
        let tail: Vec<Document> = (10..16).map(|i| doc(i, 2 + i / 13, &[1, 2])).collect();

        let mut uninterrupted = EnBlogueEngine::new(config());
        for d in &head {
            uninterrupted.process_doc(d);
        }
        let expected = uninterrupted.run_replay(&tail);
        assert_eq!(expected.first().map(|s| s.tick), Some(Tick(0)), "open tick 0 closes first");
        // Sanity: mid-tick feeding + replay equals one uninterrupted
        // replay over the whole stream.
        let mut whole = head.clone();
        whole.extend(tail.iter().cloned());
        assert_eq!(EnBlogueEngine::new(config()).run_replay(&whole), expected);

        let dir = tmp_dir("midtick");
        let path = dir.join("open.snap");
        let mut fed = EnBlogueEngine::new(config());
        for d in &head {
            fed.process_doc(d);
        }
        fed.checkpoint(&path).unwrap();
        assert_eq!(fed.metrics().ticks_closed, 0, "nothing closed at checkpoint time");
        drop(fed);

        let mut resumed = EnBlogueEngine::resume(config(), &path).unwrap();
        assert_eq!(resumed.run_replay(&tail), expected, "run_replay tail");

        // Same through the parallel ingestion pipeline.
        let mut resumed = EnBlogueEngine::resume(config(), &path).unwrap();
        let ingest = enblogue_ingest::IngestConfig { batch_size: 2, queue_depth: 2, workers: 2 };
        let (snapshots, _) = resumed.run_replay_ingest(&tail, &ingest);
        assert_eq!(snapshots, expected, "ingest tail");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_latest_falls_back_past_an_unreadable_newest_checkpoint() {
        let dir = tmp_dir("fallback");
        let mut cfg = config();
        cfg.snapshot = crate::config::SnapshotConfig {
            interval_ticks: 2,
            directory: dir.to_str().unwrap().to_owned(),
            retention: 3,
        };
        let mut engine = EnBlogueEngine::new(cfg.clone());
        stream(&mut engine, 0..8, 4, &[&[1], &[2], &[1, 2]]);
        let files = crate::snapshot::list_checkpoints(&dir).unwrap();
        assert!(files.len() >= 2);

        // Torn newest file (power loss truncation): fall back to the
        // next-older checkpoint instead of failing the failover.
        let newest = files.last().unwrap();
        let raw = std::fs::read(newest).unwrap();
        std::fs::write(newest, &raw[..raw.len() / 2]).unwrap();
        let recovered = EnBlogueEngine::resume_latest(cfg.clone(), &dir).unwrap();
        assert_eq!(recovered.metrics().restores, 1);
        assert!(recovered.metrics().ticks_closed < engine.metrics().ticks_closed);

        // Every file unreadable: the newest file's error surfaces.
        for file in &files {
            std::fs::write(file, b"garbage").unwrap();
        }
        assert!(matches!(
            EnBlogueEngine::resume_latest(cfg, &dir),
            Err(enblogue_types::EnBlogueError::SnapshotCorrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_config_drift_and_corruption() {
        let dir = tmp_dir("reject");
        let path = dir.join("state.snap");
        let mut engine = EnBlogueEngine::new(config());
        stream(&mut engine, 0..4, 3, &[&[1, 2]]);
        engine.checkpoint(&path).unwrap();

        // Config drift: a different window length must be refused.
        let mut drifted = config();
        drifted.window_ticks += 1;
        assert!(matches!(
            EnBlogueEngine::resume(drifted, &path),
            Err(enblogue_types::EnBlogueError::SnapshotConfigMismatch(_))
        ));

        // Corruption: flip a payload byte — typed error, no panic.
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            EnBlogueEngine::resume(config(), &path),
            Err(enblogue_types::EnBlogueError::SnapshotCorrupt(_))
        ));

        // Truncation mid-payload: also typed.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 3]).unwrap();
        assert!(matches!(
            EnBlogueEngine::resume(config(), &path),
            Err(enblogue_types::EnBlogueError::SnapshotCorrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn periodic_checkpoint_stage_writes_prunes_and_recovers() {
        let dir = tmp_dir("periodic");
        let mut cfg = config();
        cfg.snapshot = crate::config::SnapshotConfig {
            interval_ticks: 3,
            directory: dir.to_str().unwrap().to_owned(),
            retention: 2,
        };

        let mut engine = EnBlogueEngine::new(cfg.clone());
        stream(&mut engine, 0..10, 4, &[&[1], &[2], &[1, 2]]);
        // Checkpoints at the 3rd/6th/9th closes (ticks 2, 5, 8);
        // retention keeps the newest two.
        let files = crate::snapshot::list_checkpoints(&dir).unwrap();
        let names: Vec<String> =
            files.iter().map(|p| p.file_name().unwrap().to_str().unwrap().to_owned()).collect();
        assert_eq!(names, vec!["checkpoint-000000000005.snap", "checkpoint-000000000008.snap"]);
        let m = engine.metrics();
        assert_eq!(m.snapshots_taken, 3);
        assert!(m.snapshot_bytes_written > 0);
        assert_eq!(m.snapshot_failures, 0);

        // The checkpointing run itself is semantically invisible.
        let mut plain = EnBlogueEngine::new(config());
        stream(&mut plain, 0..10, 4, &[&[1], &[2], &[1, 2]]);
        assert_eq!(engine.pipeline().latest_snapshot(), plain.pipeline().latest_snapshot());

        // Crash recovery from the newest file continues the stream.
        let mut recovered = EnBlogueEngine::resume_latest(cfg, &dir).unwrap();
        stream(&mut recovered, 9..12, 4, &[&[1], &[2], &[1, 2]]);
        stream(&mut plain, 10..12, 4, &[&[1], &[2], &[1, 2]]);
        // (`stream` re-feeds tick 9 to the recovered engine — it resumed
        // at tick 8, so tick 9 is its next open tick.)
        assert_eq!(recovered.pipeline().latest_snapshot(), plain.pipeline().latest_snapshot());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_latest_without_checkpoints_is_not_found() {
        let dir = tmp_dir("empty");
        assert!(matches!(
            EnBlogueEngine::resume_latest(config(), &dir),
            Err(enblogue_types::EnBlogueError::NotFound(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "must start after the already-closed tick")]
    fn resumed_replay_rejects_pre_checkpoint_documents() {
        let dir = tmp_dir("stale");
        let path = dir.join("state.snap");
        let mut engine = EnBlogueEngine::new(config());
        stream(&mut engine, 0..4, 3, &[&[1, 2]]);
        engine.checkpoint(&path).unwrap();
        let mut resumed = EnBlogueEngine::resume(config(), &path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        // Tick 3 closed at checkpoint time; feeding it again must be
        // rejected, not silently double-counted.
        resumed.run_replay(&[doc(99, 3, &[1, 2])]);
    }

    #[test]
    fn metrics_reflect_processing() {
        let mut engine = EnBlogueEngine::new(config());
        stream(&mut engine, 0..3, 2, &[&[1, 2]]);
        let m = engine.metrics();
        assert_eq!(m.docs_processed, 6);
        assert_eq!(m.ticks_closed, 3);
        assert_eq!(m.distinct_tags, 2);
        assert_eq!(
            m.shards,
            enblogue_stream::exec::default_parallelism().min(16),
            "shard count defaults to the machine's parallelism"
        );
        assert!(m.seeds_current > 0);
    }
}
