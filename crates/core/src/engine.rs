//! The stand-alone EnBlogue engine.
//!
//! Wires the three stages together around tick-aligned windows: feed
//! documents with [`EnBlogueEngine::process_doc`], close each tick with
//! [`EnBlogueEngine::close_tick`], and read the emergent-topic ranking
//! from the returned [`RankingSnapshot`]. [`EnBlogueEngine::run_replay`]
//! drives a whole archive in one call (the demo's "time lapse on archived
//! data").

use crate::config::{EnBlogueConfig, MeasureKind};
use crate::pairs::{PairRegistry, TrackedPairInfo};
use crate::seeds::SeedTracker;
use crate::termwin::WindowedTermDists;
use enblogue_stats::correlation::PairCounts;
use enblogue_stats::shift::ShiftScorer;
use enblogue_types::{Document, FxHashSet, RankingSnapshot, TagId, TagPair, Tick};
use enblogue_window::{TickSeries, WindowedCounter};

/// Engine run-time counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineMetrics {
    /// Documents processed.
    pub docs_processed: u64,
    /// Ticks closed.
    pub ticks_closed: u64,
    /// Currently tracked pairs.
    pub pairs_tracked: usize,
    /// Pairs ever discovered.
    pub pairs_discovered: u64,
    /// Pairs ever evicted.
    pub pairs_evicted: u64,
    /// Seeds selected at the last tick close.
    pub seeds_current: usize,
    /// Distinct tags alive in the window.
    pub distinct_tags: usize,
}

/// The EnBlogue emergent-topic detection engine.
pub struct EnBlogueEngine {
    config: EnBlogueConfig,
    seed_tracker: SeedTracker,
    registry: PairRegistry,
    scorer: ShiftScorer,
    /// Windowed per-pair co-occurrence counts (key: packed [`TagPair`]).
    pair_counts: WindowedCounter<u64>,
    /// Windowed total document volume.
    doc_series: TickSeries,
    /// Pairs that co-occurred in the open tick (discovery candidates).
    current_pairs: FxHashSet<u64>,
    /// Per-tag term distributions (JS-divergence measure only).
    term_dists: Option<WindowedTermDists>,
    /// Seeds of the last closed tick.
    seeds: FxHashSet<TagId>,
    latest: Option<RankingSnapshot>,
    docs_processed: u64,
    ticks_closed: u64,
    /// Scratch buffer for per-document annotations.
    annotation_buf: Vec<TagId>,
}

impl EnBlogueEngine {
    /// Builds an engine from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (use
    /// [`EnBlogueConfig::builder`] to get a validated one).
    pub fn new(config: EnBlogueConfig) -> Self {
        config.validate().expect("invalid engine configuration");
        let term_dists = match config.measure {
            MeasureKind::JsDivergence => Some(WindowedTermDists::new(config.window_ticks)),
            MeasureKind::Set(_) => None,
        };
        EnBlogueEngine {
            seed_tracker: SeedTracker::new(
                config.seed_strategy,
                config.seed_count,
                config.min_seed_count,
                config.window_ticks,
            ),
            registry: PairRegistry::new(
                config.window_ticks,
                config.half_life_ms,
                config.min_pair_support,
                config.max_tracked_pairs,
            ),
            scorer: ShiftScorer::new(config.predictor, config.normalization),
            pair_counts: WindowedCounter::new(config.window_ticks),
            doc_series: TickSeries::new(config.window_ticks),
            current_pairs: FxHashSet::default(),
            term_dists,
            seeds: FxHashSet::default(),
            latest: None,
            docs_processed: 0,
            ticks_closed: 0,
            annotation_buf: Vec::with_capacity(16),
            config,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EnBlogueConfig {
        &self.config
    }

    /// Feeds one document (annotations counted into the open tick).
    ///
    /// Documents must arrive in non-decreasing timestamp order relative to
    /// closed ticks; feeding a document belonging to an already-closed
    /// tick is rejected in debug builds and counted into the open tick's
    /// slot otherwise (windowed counters never move backwards).
    pub fn process_doc(&mut self, doc: &Document) {
        let tick = self.config.tick_spec.tick_of(doc.timestamp);
        self.docs_processed += 1;
        self.doc_series.record(tick.max(self.doc_series.newest_tick().unwrap_or(tick)), 1.0);

        // Gather the annotation set once (tags, optionally merged with
        // entities), reusing the scratch buffer.
        self.annotation_buf.clear();
        if self.config.use_entities {
            self.annotation_buf.extend(doc.annotations());
        } else {
            self.annotation_buf.extend(doc.tags.iter().copied());
        }

        for &tag in &self.annotation_buf {
            self.seed_tracker.observe(tick, tag);
        }
        for i in 0..self.annotation_buf.len() {
            for j in i + 1..self.annotation_buf.len() {
                let packed = TagPair::new(self.annotation_buf[i], self.annotation_buf[j]).packed();
                self.pair_counts.increment(tick, packed);
                self.current_pairs.insert(packed);
            }
        }
        if let Some(term_dists) = &mut self.term_dists {
            term_dists.observe_doc(tick, doc, self.config.use_entities);
        }
    }

    /// Closes `tick`: selects seeds, discovers candidate pairs, updates
    /// correlations and shift scores, evicts stale pairs, and emits the
    /// top-k ranking.
    pub fn close_tick(&mut self, tick: Tick) -> RankingSnapshot {
        let now = self.config.tick_spec.end_of(tick);
        self.ticks_closed += 1;

        // Stage (i): seed selection over the window ending at `tick`.
        self.seeds = self.seed_tracker.close_tick(tick);
        // Align all windows to the closing tick (gap ticks expire data).
        self.pair_counts.advance_to(tick);
        self.doc_series.advance_to(tick);
        if let Some(term_dists) = &mut self.term_dists {
            term_dists.close_tick(tick);
        }

        // Candidate discovery: pairs that co-occurred this tick and contain
        // at least one seed. For set-overlap measures, histories are
        // backfilled with the zero correlation the pair had before
        // discovery (capped by stream age). The term-distribution measure
        // gets no backfill: two tags' language similarity is generally far
        // from zero even without co-occurrence, so pretending it was zero
        // would turn every discovery into a spurious full-scale shift.
        let backfill = match self.config.measure {
            MeasureKind::Set(_) => tick.0.min(self.config.window_ticks as u64 - 1) as usize,
            MeasureKind::JsDivergence => 0,
        };
        for packed in self.current_pairs.drain() {
            let pair = TagPair::from_packed(packed);
            if self.seeds.contains(&pair.lo()) || self.seeds.contains(&pair.hi()) {
                self.registry.discover(pair, tick, backfill);
            }
        }

        // Stages (ii)+(iii): correlation update and shift scoring for every
        // tracked pair, in deterministic order.
        let n = self.doc_series.sum().round() as u64;
        for packed in self.registry.tracked_keys() {
            let pair = TagPair::from_packed(packed);
            let ab = self.pair_counts.count(packed);
            let correlation = match self.config.measure {
                MeasureKind::Set(measure) => {
                    let a = self.seed_tracker.windowed_count(pair.lo());
                    let b = self.seed_tracker.windowed_count(pair.hi());
                    measure.compute(PairCounts::new(a, b, ab, n))
                }
                MeasureKind::JsDivergence => {
                    // The similarity is computed regardless of current
                    // co-occurrence: its *level* is background language
                    // overlap, and only *rises* (convergence of term usage)
                    // register as shifts. Pairs still need co-occurrence
                    // support to stay tracked (eviction) and to be scored
                    // (support gate in the registry), so two independently
                    // similar tags never alarm without joint activity.
                    self.term_dists
                        .as_ref()
                        .expect("term distributions allocated for JS measure")
                        .js_similarity(pair.lo(), pair.hi())
                }
            };
            self.registry.update_pair(pair, correlation, ab, tick, now, &self.scorer);
        }
        self.registry.evict(tick, now);

        let snapshot =
            RankingSnapshot { tick, time: now, ranked: self.registry.ranking(self.config.k, now) };
        self.latest = Some(snapshot.clone());
        snapshot
    }

    /// Replays a timestamp-sorted document slice, closing every tick in
    /// sequence (including empty gap ticks, so correlation histories stay
    /// tick-aligned). Returns one snapshot per closed tick.
    pub fn run_replay(&mut self, docs: &[Document]) -> Vec<RankingSnapshot> {
        let mut snapshots = Vec::new();
        let mut open: Option<Tick> = None;
        for doc in docs {
            let tick = self.config.tick_spec.tick_of(doc.timestamp);
            if let Some(current) = open {
                assert!(tick >= current, "run_replay requires timestamp-sorted documents");
                let mut t = current;
                while t < tick {
                    snapshots.push(self.close_tick(t));
                    t = t.next();
                }
            }
            open = Some(tick);
            self.process_doc(doc);
        }
        if let Some(current) = open {
            snapshots.push(self.close_tick(current));
        }
        snapshots
    }

    /// The most recent ranking, if any tick has been closed.
    pub fn latest_snapshot(&self) -> Option<&RankingSnapshot> {
        self.latest.as_ref()
    }

    /// The seeds selected at the last tick close, sorted.
    pub fn current_seeds(&self) -> Vec<TagId> {
        let mut seeds: Vec<TagId> = self.seeds.iter().copied().collect();
        seeds.sort_unstable();
        seeds
    }

    /// Whether `tag` is currently a seed.
    pub fn is_seed(&self, tag: TagId) -> bool {
        self.seeds.contains(&tag)
    }

    /// Rich info on a tracked pair.
    pub fn pair_info(&self, pair: TagPair) -> Option<TrackedPairInfo> {
        let tick = self.latest.as_ref().map_or(Tick::ZERO, |s| s.tick);
        let now = self.latest.as_ref().map_or(enblogue_types::Timestamp::ZERO, |s| s.time);
        self.registry.info(pair, tick, now)
    }

    /// The correlation history of a tracked pair (oldest → newest).
    pub fn pair_history(&self, pair: TagPair) -> Option<Vec<f64>> {
        self.registry.history_of(pair)
    }

    /// Run-time counters.
    pub fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            docs_processed: self.docs_processed,
            ticks_closed: self.ticks_closed,
            pairs_tracked: self.registry.len(),
            pairs_discovered: self.registry.discovered_total,
            pairs_evicted: self.registry.evicted_total,
            seeds_current: self.seeds.len(),
            distinct_tags: self.seed_tracker.distinct_tags(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeedStrategy;
    use enblogue_types::{TickSpec, Timestamp};

    fn config() -> EnBlogueConfig {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::hourly())
            .window_ticks(6)
            .seed_count(8)
            .min_seed_count(2)
            .top_k(5)
            .min_pair_support(1)
            .build()
            .unwrap()
    }

    fn doc(id: u64, hour: u64, tags: &[u32]) -> Document {
        Document::builder(id, Timestamp::from_hours(hour)).tags(tags.iter().map(|&t| TagId(t))).build()
    }

    /// Streams `per_tick` copies of each tag set per tick over `ticks`.
    fn stream(engine: &mut EnBlogueEngine, ticks: std::ops::Range<u64>, per_tick: usize, sets: &[&[u32]]) {
        let mut id = 1_000_000;
        for t in ticks {
            for _ in 0..per_tick {
                for set in sets {
                    id += 1;
                    engine.process_doc(&doc(id, t, set));
                }
            }
            engine.close_tick(Tick(t));
        }
    }

    #[test]
    fn emergent_pair_reaches_top_rank() {
        let mut engine = EnBlogueEngine::new(config());
        // Background: tags 1 and 2 each popular, never together.
        stream(&mut engine, 0..10, 5, &[&[1], &[2], &[3]]);
        assert!(engine.is_seed(TagId(1)) && engine.is_seed(TagId(2)));
        let quiet = engine.latest_snapshot().unwrap().clone();
        assert!(quiet.ranked.is_empty(), "no shift during background: {quiet:?}");

        // Event: tags 1 and 2 suddenly co-occur.
        stream(&mut engine, 10..12, 5, &[&[1, 2], &[3]]);
        let snap = engine.latest_snapshot().unwrap();
        let pair = TagPair::new(TagId(1), TagId(2));
        assert_eq!(snap.ranked[0].0, pair, "the correlated pair must rank first: {snap:?}");
        assert!(snap.ranked[0].1 > 0.1);
    }

    #[test]
    fn popular_tag_peak_alone_does_not_alarm() {
        // The Figure-1 control: a solo burst of a popular tag must not
        // create emergent topics.
        let mut engine = EnBlogueEngine::new(config());
        stream(&mut engine, 0..10, 5, &[&[1], &[2]]);
        // Tag 1 volume triples; co-occurrence unchanged (none).
        stream(&mut engine, 10..13, 15, &[&[1]]);
        let snap = engine.latest_snapshot().unwrap();
        assert!(
            snap.ranked.is_empty(),
            "solo popularity peaks are not correlation shifts: {snap:?}"
        );
    }

    #[test]
    fn pairs_need_a_seed_to_be_tracked() {
        let mut engine = EnBlogueEngine::new(config());
        // Tags 10, 11 co-occur but are far too rare to be seeds (1/tick
        // against seeds at 5/tick, with the 8 seed slots filled by tags
        // 1-8). Tags 1 and 2 also co-occur, and 1 is a seed.
        let sets: &[&[u32]] =
            &[&[1], &[2], &[3], &[4], &[5], &[6], &[7], &[8], &[1, 2], &[10, 11]];
        stream(&mut engine, 0..6, 5, sets);
        assert!(!engine.is_seed(TagId(10)));
        let pair = TagPair::new(TagId(10), TagId(11));
        assert!(engine.pair_info(pair).is_none(), "seedless pair must not be tracked");
        let m = engine.metrics();
        assert!(m.pairs_discovered > 0, "seeded pairs are tracked");
        assert!(engine.pair_info(TagPair::new(TagId(1), TagId(2))).is_some());
    }

    #[test]
    fn run_replay_closes_gap_ticks() {
        let mut engine = EnBlogueEngine::new(config());
        let docs = vec![doc(1, 0, &[1, 2]), doc(2, 0, &[1, 2]), doc(3, 4, &[1, 2])];
        let snapshots = engine.run_replay(&docs);
        assert_eq!(snapshots.len(), 5, "ticks 0..=4 all closed");
        assert_eq!(snapshots[0].tick, Tick(0));
        assert_eq!(snapshots[4].tick, Tick(4));
        assert_eq!(engine.metrics().docs_processed, 3);
    }

    #[test]
    fn entities_participate_when_enabled() {
        let mut engine = EnBlogueEngine::new(config());
        let mut id = 0;
        for t in 0..8u64 {
            for _ in 0..5 {
                id += 1;
                let mut d = doc(id, t, &[1]);
                if t >= 6 {
                    d.entities.push(TagId(99));
                    d.normalize();
                }
                engine.process_doc(&d);
            }
            engine.close_tick(Tick(t));
        }
        let pair = TagPair::new(TagId(1), TagId(99));
        assert!(engine.pair_info(pair).is_some(), "tag/entity mixture must be tracked");
    }

    #[test]
    fn entities_ignored_when_disabled() {
        let mut cfg = config();
        cfg.use_entities = false;
        let mut engine = EnBlogueEngine::new(cfg);
        let mut id = 0;
        for t in 0..8u64 {
            for _ in 0..5 {
                id += 1;
                let mut d = doc(id, t, &[1]);
                d.entities.push(TagId(99));
                d.normalize();
                engine.process_doc(&d);
            }
            engine.close_tick(Tick(t));
        }
        assert!(engine.pair_info(TagPair::new(TagId(1), TagId(99))).is_none());
    }

    #[test]
    fn eviction_bounds_state() {
        let mut engine = EnBlogueEngine::new(config());
        // A pair appears for two ticks then vanishes.
        stream(&mut engine, 0..2, 5, &[&[1, 2]]);
        assert_eq!(engine.metrics().pairs_tracked, 1);
        stream(&mut engine, 2..20, 5, &[&[1], &[2]]);
        assert_eq!(engine.metrics().pairs_tracked, 0, "stale pair must be evicted");
        assert_eq!(engine.metrics().pairs_evicted, 1);
    }

    #[test]
    fn volatility_strategy_runs_end_to_end() {
        let mut cfg = config();
        cfg.seed_strategy = SeedStrategy::Volatility;
        let mut engine = EnBlogueEngine::new(cfg);
        stream(&mut engine, 0..10, 3, &[&[1], &[2], &[1, 2]]);
        assert!(engine.metrics().ticks_closed == 10);
    }

    #[test]
    fn deterministic_rankings() {
        let run = || {
            let mut engine = EnBlogueEngine::new(config());
            stream(&mut engine, 0..8, 4, &[&[1], &[2], &[3, 1]]);
            stream(&mut engine, 8..10, 4, &[&[1, 2], &[3]]);
            engine.latest_snapshot().unwrap().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn metrics_reflect_processing() {
        let mut engine = EnBlogueEngine::new(config());
        stream(&mut engine, 0..3, 2, &[&[1, 2]]);
        let m = engine.metrics();
        assert_eq!(m.docs_processed, 6);
        assert_eq!(m.ticks_closed, 3);
        assert_eq!(m.distinct_tags, 2);
        assert!(m.seeds_current > 0);
    }
}
