//! The stand-alone EnBlogue engine — a thin adapter over the shared
//! [`StagePipeline`].
//!
//! Feed documents with [`EnBlogueEngine::process_doc`] (or batched with
//! [`EnBlogueEngine::process_docs`]), close each tick with
//! [`EnBlogueEngine::close_tick`], and read the emergent-topic ranking
//! from the returned [`RankingSnapshot`]. [`EnBlogueEngine::run_replay`]
//! drives a whole archive in one call (the demo's "time lapse on archived
//! data").
//!
//! All tick semantics live in [`crate::stages`]; this type only provides
//! the classic engine-shaped API. The DAG operator
//! ([`crate::ops::EngineOp`]) wraps the *same* pipeline, so both execution
//! surfaces are a single implementation.

use crate::config::EnBlogueConfig;
use crate::ingest::ReplayIngest;
use crate::pairs::TrackedPairInfo;
use crate::stages::StagePipeline;
use enblogue_ingest::pipeline::{IngestConfig, IngestPipeline, IngestStats};
use enblogue_types::{Document, RankingSnapshot, TagId, TagPair, Tick};

pub use crate::stages::EngineMetrics;

/// The EnBlogue emergent-topic detection engine.
pub struct EnBlogueEngine {
    pipeline: StagePipeline,
}

impl EnBlogueEngine {
    /// Builds an engine from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (use
    /// [`EnBlogueConfig::builder`] to get a validated one).
    pub fn new(config: EnBlogueConfig) -> Self {
        EnBlogueEngine { pipeline: StagePipeline::new(config) }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EnBlogueConfig {
        self.pipeline.config()
    }

    /// The underlying stage pipeline (read access).
    pub fn pipeline(&self) -> &StagePipeline {
        &self.pipeline
    }

    /// Unwraps the engine into its stage pipeline (the DAG operator mounts
    /// engines this way).
    pub fn into_pipeline(self) -> StagePipeline {
        self.pipeline
    }

    /// Feeds one document (annotations counted into the open tick).
    ///
    /// Documents must arrive in non-decreasing timestamp order relative to
    /// closed ticks; feeding a document belonging to an already-closed
    /// tick is counted into the open tick's slot (windowed counters never
    /// move backwards).
    pub fn process_doc(&mut self, doc: &Document) {
        self.pipeline.process_doc(doc);
    }

    /// Batched ingestion of an open-tick document slice; semantically
    /// identical to per-document feeding (see
    /// [`StagePipeline::process_docs`] for the batching contract).
    pub fn process_docs(&mut self, docs: &[Document]) {
        self.pipeline.process_docs(docs);
    }

    /// Closes `tick`: selects seeds, discovers candidate pairs, updates
    /// correlations and shift scores, evicts stale pairs, and emits the
    /// top-k ranking.
    pub fn close_tick(&mut self, tick: Tick) -> RankingSnapshot {
        self.pipeline.close_tick(tick)
    }

    /// Replays a timestamp-sorted document slice, closing every tick in
    /// sequence (including empty gap ticks, so correlation histories stay
    /// tick-aligned). Returns one snapshot per closed tick.
    pub fn run_replay(&mut self, docs: &[Document]) -> Vec<RankingSnapshot> {
        self.pipeline.run_replay(docs)
    }

    /// [`EnBlogueEngine::run_replay`] through the shard-partitioned
    /// parallel ingestion subsystem (`enblogue-ingest`): documents are
    /// batched per tick, tokenized/pair-partitioned on a worker pool
    /// behind a bounded queue, and applied to the sharded pair state one
    /// worker per shard. Snapshots are byte-identical to the sequential
    /// replay for any batch size, queue depth, or worker count; a worker
    /// count of `0` uses the configuration's `ingest_workers`.
    ///
    /// # Panics
    /// Panics if `ingest` is invalid (check with
    /// [`IngestConfig::validate`] first to handle the error instead) or if
    /// `docs` is not timestamp-sorted.
    pub fn run_replay_ingest(
        &mut self,
        docs: &[Document],
        ingest: &IngestConfig,
    ) -> (Vec<RankingSnapshot>, IngestStats) {
        let mut resolved = ingest.clone();
        if resolved.workers == 0 {
            resolved.workers = self.pipeline.config().ingest_workers;
        }
        let mut sink = ReplayIngest::new(&mut self.pipeline);
        let stats = IngestPipeline::new(resolved).run(&mut sink, docs);
        (sink.into_snapshots(), stats)
    }

    /// The most recent ranking, if any tick has been closed.
    pub fn latest_snapshot(&self) -> Option<&RankingSnapshot> {
        self.pipeline.latest_snapshot()
    }

    /// The seeds selected at the last tick close, sorted.
    pub fn current_seeds(&self) -> Vec<TagId> {
        self.pipeline.current_seeds()
    }

    /// Whether `tag` is currently a seed.
    pub fn is_seed(&self, tag: TagId) -> bool {
        self.pipeline.is_seed(tag)
    }

    /// Rich info on a tracked pair.
    pub fn pair_info(&self, pair: TagPair) -> Option<TrackedPairInfo> {
        self.pipeline.pair_info(pair)
    }

    /// The correlation history of a tracked pair (oldest → newest).
    pub fn pair_history(&self, pair: TagPair) -> Option<Vec<f64>> {
        self.pipeline.pair_history(pair)
    }

    /// Run-time counters.
    pub fn metrics(&self) -> EngineMetrics {
        self.pipeline.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeedStrategy;
    use enblogue_types::{TickSpec, Timestamp};

    fn config() -> EnBlogueConfig {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::hourly())
            .window_ticks(6)
            .seed_count(8)
            .min_seed_count(2)
            .top_k(5)
            .min_pair_support(1)
            .build()
            .unwrap()
    }

    fn doc(id: u64, hour: u64, tags: &[u32]) -> Document {
        Document::builder(id, Timestamp::from_hours(hour))
            .tags(tags.iter().map(|&t| TagId(t)))
            .build()
    }

    /// Streams `per_tick` copies of each tag set per tick over `ticks`.
    fn stream(
        engine: &mut EnBlogueEngine,
        ticks: std::ops::Range<u64>,
        per_tick: usize,
        sets: &[&[u32]],
    ) {
        let mut id = 1_000_000;
        for t in ticks {
            for _ in 0..per_tick {
                for set in sets {
                    id += 1;
                    engine.process_doc(&doc(id, t, set));
                }
            }
            engine.close_tick(Tick(t));
        }
    }

    #[test]
    fn emergent_pair_reaches_top_rank() {
        let mut engine = EnBlogueEngine::new(config());
        // Background: tags 1 and 2 each popular, never together.
        stream(&mut engine, 0..10, 5, &[&[1], &[2], &[3]]);
        assert!(engine.is_seed(TagId(1)) && engine.is_seed(TagId(2)));
        let quiet = engine.latest_snapshot().unwrap().clone();
        assert!(quiet.ranked.is_empty(), "no shift during background: {quiet:?}");

        // Event: tags 1 and 2 suddenly co-occur.
        stream(&mut engine, 10..12, 5, &[&[1, 2], &[3]]);
        let snap = engine.latest_snapshot().unwrap();
        let pair = TagPair::new(TagId(1), TagId(2));
        assert_eq!(snap.ranked[0].0, pair, "the correlated pair must rank first: {snap:?}");
        assert!(snap.ranked[0].1 > 0.1);
    }

    #[test]
    fn popular_tag_peak_alone_does_not_alarm() {
        // The Figure-1 control: a solo burst of a popular tag must not
        // create emergent topics.
        let mut engine = EnBlogueEngine::new(config());
        stream(&mut engine, 0..10, 5, &[&[1], &[2]]);
        // Tag 1 volume triples; co-occurrence unchanged (none).
        stream(&mut engine, 10..13, 15, &[&[1]]);
        let snap = engine.latest_snapshot().unwrap();
        assert!(
            snap.ranked.is_empty(),
            "solo popularity peaks are not correlation shifts: {snap:?}"
        );
    }

    #[test]
    fn pairs_need_a_seed_to_be_tracked() {
        let mut engine = EnBlogueEngine::new(config());
        // Tags 10, 11 co-occur but are far too rare to be seeds (1/tick
        // against seeds at 5/tick, with the 8 seed slots filled by tags
        // 1-8). Tags 1 and 2 also co-occur, and 1 is a seed.
        let sets: &[&[u32]] = &[&[1], &[2], &[3], &[4], &[5], &[6], &[7], &[8], &[1, 2], &[10, 11]];
        stream(&mut engine, 0..6, 5, sets);
        assert!(!engine.is_seed(TagId(10)));
        let pair = TagPair::new(TagId(10), TagId(11));
        assert!(engine.pair_info(pair).is_none(), "seedless pair must not be tracked");
        let m = engine.metrics();
        assert!(m.pairs_discovered > 0, "seeded pairs are tracked");
        assert!(engine.pair_info(TagPair::new(TagId(1), TagId(2))).is_some());
    }

    #[test]
    fn run_replay_closes_gap_ticks() {
        let mut engine = EnBlogueEngine::new(config());
        let docs = vec![doc(1, 0, &[1, 2]), doc(2, 0, &[1, 2]), doc(3, 4, &[1, 2])];
        let snapshots = engine.run_replay(&docs);
        assert_eq!(snapshots.len(), 5, "ticks 0..=4 all closed");
        assert_eq!(snapshots[0].tick, Tick(0));
        assert_eq!(snapshots[4].tick, Tick(4));
        assert_eq!(engine.metrics().docs_processed, 3);
    }

    #[test]
    fn process_docs_batches_match_single_feeding() {
        let docs: Vec<Document> =
            (0..30).map(|i| doc(i, i / 10, &[1, 2, (i % 3) as u32 + 3])).collect();
        let mut batched = EnBlogueEngine::new(config());
        batched.process_docs(&docs[..10]);
        batched.close_tick(Tick(0));
        batched.process_docs(&docs[10..20]);
        batched.close_tick(Tick(1));
        batched.process_docs(&docs[20..]);
        let last_batched = batched.close_tick(Tick(2));

        let mut single = EnBlogueEngine::new(config());
        let snapshots = single.run_replay(&docs);
        assert_eq!(last_batched, *snapshots.last().unwrap());
        assert_eq!(batched.metrics(), single.metrics());
    }

    #[test]
    fn entities_participate_when_enabled() {
        let mut engine = EnBlogueEngine::new(config());
        let mut id = 0;
        for t in 0..8u64 {
            for _ in 0..5 {
                id += 1;
                let mut d = doc(id, t, &[1]);
                if t >= 6 {
                    d.entities.push(TagId(99));
                    d.normalize();
                }
                engine.process_doc(&d);
            }
            engine.close_tick(Tick(t));
        }
        let pair = TagPair::new(TagId(1), TagId(99));
        assert!(engine.pair_info(pair).is_some(), "tag/entity mixture must be tracked");
    }

    #[test]
    fn entities_ignored_when_disabled() {
        let mut cfg = config();
        cfg.use_entities = false;
        let mut engine = EnBlogueEngine::new(cfg);
        let mut id = 0;
        for t in 0..8u64 {
            for _ in 0..5 {
                id += 1;
                let mut d = doc(id, t, &[1]);
                d.entities.push(TagId(99));
                d.normalize();
                engine.process_doc(&d);
            }
            engine.close_tick(Tick(t));
        }
        assert!(engine.pair_info(TagPair::new(TagId(1), TagId(99))).is_none());
    }

    #[test]
    fn eviction_bounds_state() {
        let mut engine = EnBlogueEngine::new(config());
        // A pair appears for two ticks then vanishes.
        stream(&mut engine, 0..2, 5, &[&[1, 2]]);
        assert_eq!(engine.metrics().pairs_tracked, 1);
        stream(&mut engine, 2..20, 5, &[&[1], &[2]]);
        assert_eq!(engine.metrics().pairs_tracked, 0, "stale pair must be evicted");
        assert_eq!(engine.metrics().pairs_evicted, 1);
    }

    #[test]
    fn volatility_strategy_runs_end_to_end() {
        let mut cfg = config();
        cfg.seed_strategy = SeedStrategy::Volatility;
        let mut engine = EnBlogueEngine::new(cfg);
        stream(&mut engine, 0..10, 3, &[&[1], &[2], &[1, 2]]);
        assert!(engine.metrics().ticks_closed == 10);
    }

    #[test]
    fn deterministic_rankings() {
        let run = || {
            let mut engine = EnBlogueEngine::new(config());
            stream(&mut engine, 0..8, 4, &[&[1], &[2], &[3, 1]]);
            stream(&mut engine, 8..10, 4, &[&[1, 2], &[3]]);
            engine.latest_snapshot().unwrap().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_replay_ingest_matches_run_replay() {
        let docs: Vec<Document> =
            (0..120).map(|i| doc(i, i / 20, &[(i % 5) as u32, (i % 3) as u32 + 5])).collect();
        let mut sequential = EnBlogueEngine::new(config());
        let baseline = sequential.run_replay(&docs);
        for (batch_size, workers) in [(1usize, 2usize), (32, 0), (512, 4)] {
            let mut engine = EnBlogueEngine::new(config());
            let ingest = enblogue_ingest::IngestConfig { batch_size, queue_depth: 4, workers };
            let (snapshots, stats) = engine.run_replay_ingest(&docs, &ingest);
            assert_eq!(snapshots, baseline, "batch={batch_size} workers={workers}");
            assert_eq!(stats.docs, 120);
            if workers == 0 {
                assert_eq!(
                    stats.workers,
                    engine.config().ingest_workers,
                    "auto worker count comes from the engine configuration"
                );
            }
            assert_eq!(engine.metrics(), sequential.metrics());
        }
    }

    #[test]
    fn sharded_engines_match_the_unsharded_baseline() {
        let run = |shards: usize, parallel: bool| {
            let cfg = EnBlogueConfig::builder()
                .tick_spec(TickSpec::hourly())
                .window_ticks(6)
                .seed_count(8)
                .min_seed_count(2)
                .top_k(5)
                .min_pair_support(1)
                .shards(shards)
                .parallel_close(parallel)
                .build()
                .unwrap();
            let mut engine = EnBlogueEngine::new(cfg);
            stream(&mut engine, 0..8, 4, &[&[1], &[2], &[3], &[1, 3]]);
            stream(&mut engine, 8..10, 4, &[&[1, 2], &[3]]);
            engine.latest_snapshot().unwrap().clone()
        };
        let baseline = run(1, false);
        assert!(!baseline.ranked.is_empty());
        for shards in [4usize, 16] {
            assert_eq!(run(shards, false), baseline, "{shards} shards");
            assert_eq!(run(shards, true), baseline, "{shards} shards, parallel close");
        }
    }

    #[test]
    fn metrics_reflect_processing() {
        let mut engine = EnBlogueEngine::new(config());
        stream(&mut engine, 0..3, 2, &[&[1, 2]]);
        let m = engine.metrics();
        assert_eq!(m.docs_processed, 6);
        assert_eq!(m.ticks_closed, 3);
        assert_eq!(m.distinct_tags, 2);
        assert_eq!(
            m.shards,
            enblogue_stream::exec::default_parallelism().min(16),
            "shard count defaults to the machine's parallelism"
        );
        assert!(m.seeds_current > 0);
    }
}
