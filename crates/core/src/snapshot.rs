//! Versioned checkpoint/restore of the full engine state.
//!
//! EnBlogue is a continuously running service: tag-pair windows, shift
//! scores and the routing epoch accumulate over the whole stream, so a
//! crash loses state that replay alone can only rebuild by re-reading
//! everything. This module is the failover answer: the complete
//! [`crate::stages::PipelineState`] — per-shard pair states, windowed
//! counts *including observed-but-undiscovered keys*, the routing table
//! with its epoch, the rebalancer's load accumulators, seed-tracker
//! windows, and the tick cursor — serializes into one length-prefixed,
//! checksummed binary file, written atomically (temp file + rename) and
//! restored into a fresh pipeline that continues mid-stream.
//!
//! The headline invariant, pinned by `tests/stage_parity.rs` and
//! `crates/core/tests/prop_snapshot.rs`: **checkpoint at any tick close +
//! restore + replay of the tail produces byte-identical rankings to the
//! uninterrupted run**, across every execution knob (shard count, close
//! mode, ingest workers, rebalance policy). Restores of truncated,
//! corrupted, or incompatible files surface a typed
//! [`EnBlogueError`] — never a panic: a half-written checkpoint from a
//! crash is exactly the input the restore path exists for.
//!
//! # File format (version 2)
//!
//! ```text
//! magic   8 bytes  b"ENBSNP01"
//! version u32 LE   SNAPSHOT_VERSION
//! length  u64 LE   payload byte count
//! payload          component sections (see the encode_snapshot impls)
//! checksum u64 LE  FNV-1a 64 over the payload
//! ```
//!
//! All integers are little-endian and fixed-width; `f64`s are written as
//! their IEEE-754 bit patterns, so every float restores *bit-for-bit*
//! (running window sums are shaped by past evictions and must not be
//! recomputed). Map contents are written in sorted key order, which makes
//! equal states produce equal bytes.
//!
//! # Entry points
//!
//! * [`crate::engine::EnBlogueEngine::checkpoint`] /
//!   [`crate::engine::EnBlogueEngine::resume`] — explicit engine-level API.
//! * `EnBlogueConfig::snapshot` ([`crate::config::SnapshotConfig`]) — a
//!   `checkpoint` stage at tick close writes `checkpoint-<tick>.snap`
//!   files on an interval and prunes beyond the retention count.
//! * [`latest_checkpoint`] — finds the newest checkpoint in a directory
//!   for crash recovery (`resume` + tail replay).

use crate::config::{EnBlogueConfig, SnapshotConfig, TelemetryConfig};
use enblogue_types::{EnBlogueError, TagId, Tick, Timestamp};
use std::path::{Path, PathBuf};

/// The snapshot format version this build reads and writes.
///
/// Version 2 appended the event-time robustness sections (reordering
/// buffer — pending documents included — and source-guard state) behind
/// presence bytes; version-1 files are rejected with a typed
/// [`EnBlogueError::SnapshotVersionMismatch`] rather than misparsed.
pub const SNAPSHOT_VERSION: u32 = 2;

/// File magic: identifies EnBlogue snapshots regardless of extension.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ENBSNP01";

/// Canonical extension of checkpoint files.
pub const SNAPSHOT_EXTENSION: &str = "snap";

/// Result of one checkpoint write (see
/// [`crate::engine::EnBlogueEngine::checkpoint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Where the snapshot landed.
    pub path: PathBuf,
    /// Total file size in bytes (framing included).
    pub bytes: u64,
    /// Wall-clock microseconds spent encoding and writing.
    pub write_micros: u64,
    /// Pairs tracked at checkpoint time.
    pub tracked_pairs: usize,
    /// The tick cursor captured (None if no tick was closed yet).
    pub tick: Option<Tick>,
}

/// FNV-1a 64-bit hash — the payload checksum. Not cryptographic; it
/// detects truncation and bit rot, which is the failure model of a local
/// checkpoint file.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of every configuration knob that shapes serialized state.
///
/// The snapshot section itself is excluded (changing where checkpoints go
/// must not invalidate old checkpoints); everything else — semantic knobs
/// *and* execution knobs — must match exactly for a resume, because the
/// restored structures (shard pool, slot grid, window lengths, sketch
/// capacities) are sized by them.
pub(crate) fn config_fingerprint(config: &EnBlogueConfig) -> u64 {
    let mut config = config.clone();
    config.snapshot = SnapshotConfig::default();
    // Telemetry shapes no serialized state either: a checkpoint written
    // with telemetry off must resume with it on (and vice versa).
    config.telemetry = TelemetryConfig::default();
    // `Debug` output is a stable, total rendering of the plain-data config
    // struct (no maps, no addresses), so its hash is a stable fingerprint.
    fnv1a64(format!("{config:?}").as_bytes())
}

/// Shorthand for a corrupt-snapshot error.
pub(crate) fn corrupt(message: impl Into<String>) -> EnBlogueError {
    EnBlogueError::SnapshotCorrupt(message.into())
}

fn io_err(context: &str, path: &Path, err: std::io::Error) -> EnBlogueError {
    EnBlogueError::SnapshotIo(format!("{context} {}: {err}", path.display()))
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// Append-only payload writer (little-endian, fixed-width).
#[derive(Default)]
pub(crate) struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub(crate) fn new() -> Self {
        SnapWriter { buf: Vec::with_capacity(4096) }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// IEEE-754 bit pattern — restores bit-for-bit, NaN payloads included.
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn tick(&mut self, t: Tick) {
        self.u64(t.0);
    }

    pub(crate) fn timestamp(&mut self, t: Timestamp) {
        self.u64(t.0);
    }

    pub(crate) fn tag(&mut self, t: TagId) {
        self.u32(t.0);
    }

    pub(crate) fn opt_tick(&mut self, t: Option<Tick>) {
        match t {
            Some(t) => {
                self.u8(1);
                self.tick(t);
            }
            None => self.u8(0),
        }
    }

    /// Length-prefixed raw byte string (buffered document text).
    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        self.usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor-based payload reader; every read is bounds-checked and returns
/// a typed [`EnBlogueError::SnapshotCorrupt`] on truncation.
pub(crate) struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        SnapReader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EnBlogueError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| corrupt("payload truncated mid-field"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, EnBlogueError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, EnBlogueError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, EnBlogueError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, EnBlogueError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, EnBlogueError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn tick(&mut self) -> Result<Tick, EnBlogueError> {
        Ok(Tick(self.u64()?))
    }

    pub(crate) fn timestamp(&mut self) -> Result<Timestamp, EnBlogueError> {
        Ok(Timestamp(self.u64()?))
    }

    pub(crate) fn tag(&mut self) -> Result<TagId, EnBlogueError> {
        Ok(TagId(self.u32()?))
    }

    pub(crate) fn opt_tick(&mut self) -> Result<Option<Tick>, EnBlogueError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.tick()?)),
            tag => Err(corrupt(format!("invalid Option tag {tag}"))),
        }
    }

    /// Reads a sequence length and sanity-checks it against the remaining
    /// bytes (each element needs at least `min_elem_bytes`), so a corrupt
    /// length cannot trigger an absurd allocation before the truncation
    /// would surface naturally.
    pub(crate) fn seq(&mut self, min_elem_bytes: usize) -> Result<usize, EnBlogueError> {
        let len = self.u64()? as usize;
        let remaining = self.data.len() - self.pos;
        if len.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(corrupt(format!(
                "sequence of {len} elements exceeds the {remaining} bytes left in the payload"
            )));
        }
        Ok(len)
    }

    /// Length-prefixed raw byte string (inverse of
    /// [`SnapWriter::bytes`]).
    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, EnBlogueError> {
        let len = self.seq(1)?;
        Ok(self.take(len)?.to_vec())
    }

    /// Asserts the payload was consumed exactly.
    pub(crate) fn finish(&self) -> Result<(), EnBlogueError> {
        if self.pos != self.data.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after the last section",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// File framing
// ---------------------------------------------------------------------------

/// Frames `payload` (magic + version + length + checksum) and writes it
/// atomically and durably: the bytes land in a sibling temp file, are
/// `fsync`ed, `rename`d over `path`, and the directory entry is synced —
/// so neither a process crash nor a power loss mid-write can leave a
/// partial file under the checkpoint name. Returns the framed byte count.
pub(crate) fn write_snapshot_file(path: &Path, payload: &[u8]) -> Result<u64, EnBlogueError> {
    use std::io::Write;

    let mut framed = Vec::with_capacity(payload.len() + 28);
    framed.extend_from_slice(&SNAPSHOT_MAGIC);
    framed.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    framed.extend_from_slice(payload);
    framed.extend_from_slice(&fnv1a64(payload).to_le_bytes());

    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| io_err("creating", parent, e))?;
    }
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
        file.write_all(&framed).map_err(|e| io_err("writing", &tmp, e))?;
        // Flush data to stable storage *before* the rename becomes
        // visible: otherwise a power loss can journal the rename while
        // the data blocks are still in flight, publishing a checkpoint
        // name over zero-length or garbage content.
        file.sync_all().map_err(|e| io_err("syncing", &tmp, e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| io_err("publishing", path, e))
    })();
    if let Err(err) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(err);
    }
    // Persist the directory entry too (best-effort: on filesystems or
    // platforms that refuse directory fsync the rename is still atomic
    // for process crashes, which is the common failure).
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(framed.len() as u64)
}

/// The temp-file name used by the atomic write (process-id suffixed so
/// concurrent checkpointers in different processes cannot collide).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Reads and verifies a snapshot file, returning the raw payload.
///
/// Every malformation — short file, wrong magic, unsupported version,
/// length mismatch, checksum mismatch — surfaces as a typed error.
pub(crate) fn read_snapshot_payload(path: &Path) -> Result<Vec<u8>, EnBlogueError> {
    const HEADER: usize = SNAPSHOT_MAGIC.len() + 4 + 8;
    let mut bytes = std::fs::read(path).map_err(|e| io_err("reading", path, e))?;
    if bytes.len() < HEADER + 8 {
        return Err(corrupt(format!("file is {} bytes, smaller than the frame", bytes.len())));
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic: not an EnBlogue snapshot"));
    }
    let version = u32::from_le_bytes(
        bytes[SNAPSHOT_MAGIC.len()..SNAPSHOT_MAGIC.len() + 4].try_into().expect("4 bytes"),
    );
    if version != SNAPSHOT_VERSION {
        return Err(EnBlogueError::SnapshotVersionMismatch {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let len =
        u64::from_le_bytes(bytes[SNAPSHOT_MAGIC.len() + 4..HEADER].try_into().expect("8 bytes"))
            as usize;
    if bytes.len() != HEADER + len + 8 {
        return Err(corrupt(format!(
            "length prefix says {len} payload bytes, file carries {}",
            bytes.len().saturating_sub(HEADER + 8)
        )));
    }
    let expected = u64::from_le_bytes(bytes[HEADER + len..].try_into().expect("8 bytes"));
    let actual = fnv1a64(&bytes[HEADER..HEADER + len]);
    if actual != expected {
        return Err(corrupt(format!(
            "checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
        )));
    }
    // Strip the frame in place rather than copying the payload out: a
    // restore already holds the whole file, and a second full-size copy
    // doubles peak memory exactly when a failover process is tightest.
    bytes.truncate(HEADER + len);
    bytes.drain(..HEADER);
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// Checkpoint directories
// ---------------------------------------------------------------------------

/// The canonical file name of the checkpoint taken at `tick`
/// (zero-padded so lexicographic order is tick order).
pub fn checkpoint_file_name(tick: Tick) -> String {
    format!("checkpoint-{:012}.{SNAPSHOT_EXTENSION}", tick.0)
}

/// Checkpoint files in `dir`, oldest first. Non-checkpoint files are
/// ignored; a missing directory reads as empty (nothing checkpointed yet).
pub fn list_checkpoints(dir: &Path) -> Result<Vec<PathBuf>, EnBlogueError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err("listing", dir, e)),
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("checkpoint-") && n.ends_with(".snap"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// The newest checkpoint in `dir`, if any — the crash-recovery entry
/// point (pass it to [`crate::engine::EnBlogueEngine::resume`]).
pub fn latest_checkpoint(dir: &Path) -> Result<Option<PathBuf>, EnBlogueError> {
    Ok(list_checkpoints(dir)?.pop())
}

/// Deletes the oldest checkpoints beyond `retention`, plus temp files
/// orphaned by *other* processes' crashes mid-write (our own pid's temp
/// may be a live write in flight). Best-effort: a file that cannot be
/// removed is skipped (the next prune retries), because retention is
/// hygiene, not correctness.
pub(crate) fn prune_checkpoints(dir: &Path, retention: usize) {
    let Ok(files) = list_checkpoints(dir) else { return };
    let excess = files.len().saturating_sub(retention.max(1));
    for path in files.into_iter().take(excess) {
        let _ = std::fs::remove_file(path);
    }
    let own_suffix = format!(".tmp.{}", std::process::id());
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for path in entries.filter_map(|entry| entry.ok().map(|e| e.path())) {
        let orphaned = path.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
            n.starts_with("checkpoint-") && n.contains(".snap.tmp.") && !n.ends_with(&own_suffix)
        });
        if orphaned {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("enblogue-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn codec_round_trips_every_primitive() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(65_000);
        w.u32(123_456);
        w.u64(u64::MAX - 1);
        w.f64(-0.125);
        w.tick(Tick(42));
        w.opt_tick(None);
        w.opt_tick(Some(Tick(9)));
        w.timestamp(Timestamp::from_hours(3));
        w.tag(TagId(11));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.tick().unwrap(), Tick(42));
        assert_eq!(r.opt_tick().unwrap(), None);
        assert_eq!(r.opt_tick().unwrap(), Some(Tick(9)));
        assert_eq!(r.timestamp().unwrap(), Timestamp::from_hours(3));
        assert_eq!(r.tag().unwrap(), TagId(11));
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = SnapWriter::new();
        w.u32(5);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.u64().is_err(), "reading past the end must fail");
        let mut r = SnapReader::new(&bytes);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(EnBlogueError::SnapshotCorrupt(_))));
    }

    #[test]
    fn absurd_sequence_lengths_are_rejected_before_allocation() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.seq(8), Err(EnBlogueError::SnapshotCorrupt(_))));
    }

    #[test]
    fn file_round_trip_and_corruption_detection() {
        let dir = tmp_dir("frame");
        let path = dir.join("state.snap");
        let payload = b"engine state bytes".to_vec();
        let bytes = write_snapshot_file(&path, &payload).unwrap();
        assert_eq!(bytes, payload.len() as u64 + 28);
        assert_eq!(read_snapshot_payload(&path).unwrap(), payload);

        // Flip one payload byte: checksum mismatch.
        let mut raw = std::fs::read(&path).unwrap();
        raw[SNAPSHOT_MAGIC.len() + 4 + 8] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            read_snapshot_payload(&path),
            Err(EnBlogueError::SnapshotCorrupt(msg)) if msg.contains("checksum")
        ));

        // Truncate: length mismatch.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();
        assert!(matches!(read_snapshot_payload(&path), Err(EnBlogueError::SnapshotCorrupt(_))));

        // Wrong version.
        let mut raw = Vec::new();
        raw.extend_from_slice(&SNAPSHOT_MAGIC);
        raw.extend_from_slice(&99u32.to_le_bytes());
        raw.extend_from_slice(&0u64.to_le_bytes());
        raw.extend_from_slice(&fnv1a64(b"").to_le_bytes());
        std::fs::write(&path, &raw).unwrap();
        assert_eq!(
            read_snapshot_payload(&path),
            Err(EnBlogueError::SnapshotVersionMismatch { found: 99, supported: SNAPSHOT_VERSION })
        );

        // Wrong magic.
        std::fs::write(&path, b"NOTASNAPSHOTFILE----------------").unwrap();
        assert!(matches!(
            read_snapshot_payload(&path),
            Err(EnBlogueError::SnapshotCorrupt(msg)) if msg.contains("magic")
        ));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_are_io_errors_not_panics() {
        let err = read_snapshot_payload(Path::new("/nonexistent/enblogue.snap")).unwrap_err();
        assert!(matches!(err, EnBlogueError::SnapshotIo(_)));
    }

    #[test]
    fn retention_prunes_oldest_checkpoints() {
        let dir = tmp_dir("retention");
        for tick in [3u64, 1, 7, 5] {
            write_snapshot_file(&dir.join(checkpoint_file_name(Tick(tick))), b"x").unwrap();
        }
        std::fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
        prune_checkpoints(&dir, 2);
        let kept = list_checkpoints(&dir).unwrap();
        assert_eq!(
            kept.iter()
                .map(|p| p.file_name().unwrap().to_str().unwrap().to_owned())
                .collect::<Vec<_>>(),
            vec![checkpoint_file_name(Tick(5)), checkpoint_file_name(Tick(7))],
            "newest two survive, name order is tick order"
        );
        assert!(dir.join("unrelated.txt").exists(), "non-checkpoint files untouched");
        // Orphaned temp files from a crashed *other* process are swept;
        // our own pid's in-flight temp is left alone.
        let orphan = dir.join("checkpoint-000000000009.snap.tmp.1");
        let own = dir.join(format!("checkpoint-000000000009.snap.tmp.{}", std::process::id()));
        std::fs::write(&orphan, b"torn").unwrap();
        std::fs::write(&own, b"in flight").unwrap();
        prune_checkpoints(&dir, 2);
        assert!(!orphan.exists(), "foreign orphan removed");
        assert!(own.exists(), "own temp file kept");
        assert_eq!(latest_checkpoint(&dir).unwrap(), Some(dir.join(checkpoint_file_name(Tick(7)))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_lists_empty() {
        let ghost = std::env::temp_dir().join("enblogue-snap-does-not-exist-xyz");
        assert_eq!(list_checkpoints(&ghost).unwrap(), Vec::<PathBuf>::new());
        assert_eq!(latest_checkpoint(&ghost).unwrap(), None);
    }

    #[test]
    fn fingerprint_ignores_the_snapshot_section_only() {
        let base = EnBlogueConfig::builder().build().unwrap();
        let mut moved = base.clone();
        moved.snapshot =
            SnapshotConfig { interval_ticks: 5, directory: "/elsewhere".into(), retention: 9 };
        assert_eq!(
            config_fingerprint(&base),
            config_fingerprint(&moved),
            "checkpoint placement must not invalidate old checkpoints"
        );
        let mut semantic = base.clone();
        semantic.window_ticks += 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&semantic));
        let mut execution = base.clone();
        execution.shards += 1;
        assert_ne!(
            config_fingerprint(&base),
            config_fingerprint(&execution),
            "execution knobs size the restored structures and are fingerprinted too"
        );
    }
}
