//! Property tests for the slab-resident pair storage: the sharded
//! registry (slab columns, arena history rings, lane-based windowed
//! counts, incrementally maintained iteration order) must be observably
//! indistinguishable from a straightforward map-of-structs reference
//! model under random ingest / close / evict / migrate /
//! snapshot-restore sequences — including bit-exact scores, since both
//! sides must perform the identical float operations in the identical
//! order.

use enblogue_core::pairs::{RebalanceConfig, ShardedPairRegistry};
use enblogue_stats::predict::PredictorKind;
use enblogue_stats::shift::{ErrorNormalization, ShiftScorer};
use enblogue_types::{FxHashSet, TagId, TagPair, Tick, Timestamp};
use enblogue_window::DecayValue;
use proptest::prelude::*;
use std::collections::BTreeMap;

const POOL: usize = 4;
const SLOTS_PER_SHARD: usize = 4;
const SLOTS: usize = POOL * SLOTS_PER_SHARD;
const WINDOW: usize = 5;
const MIN_SUPPORT: u64 = 1;
const CAP: usize = 12;
const TOP_K: usize = 16;

fn scorer() -> ShiftScorer {
    ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Absolute)
}

/// The synthetic but deterministic correlation both sides compute.
fn correlate(pair: TagPair, ab: u64) -> f64 {
    ab as f64 / (3.0 + (pair.lo().0 % 7) as f64)
}

fn seeded(pair: TagPair, seeds: &FxHashSet<TagId>) -> bool {
    seeds.contains(&pair.lo()) || seeds.contains(&pair.hi())
}

/// The straightforward reference: a `BTreeMap` of per-pair structs with
/// `Vec` histories, and brute-force windowed counts over the retained
/// per-tick observation log. No slabs, no lanes, no incremental anything.
struct RefModel {
    states: BTreeMap<u64, RefState>,
    /// Every observation ever, as `(tick, packed)` — windowed counts are
    /// recomputed from scratch on demand.
    log: Vec<(u64, u64)>,
    current: Vec<u64>,
    evicted: u64,
}

struct RefState {
    history: Vec<f64>,
    score: DecayValue,
    last_support: Tick,
    since: Tick,
}

impl RefModel {
    fn new() -> Self {
        RefModel { states: BTreeMap::new(), log: Vec::new(), current: Vec::new(), evicted: 0 }
    }

    fn observe(&mut self, tick: u64, packed: u64) {
        self.log.push((tick, packed));
        self.current.push(packed);
    }

    /// Windowed co-occurrence count of `packed` in the window ending at
    /// `tick`, brute-force over the log.
    fn count(&self, tick: u64, packed: u64) -> u64 {
        let lo = tick.saturating_sub(WINDOW as u64 - 1);
        self.log.iter().filter(|&&(t, k)| k == packed && t >= lo && t <= tick).count() as u64
    }

    fn close(&mut self, tick: u64, seeds: &FxHashSet<TagId>, s: &ShiftScorer) {
        let now = Timestamp::from_hours(tick);
        // Discovery: this tick's seeded co-occurrences become tracked.
        let candidates = std::mem::take(&mut self.current);
        for packed in candidates {
            let pair = TagPair::from_packed(packed);
            if seeded(pair, seeds) {
                self.states.entry(packed).or_insert_with(|| RefState {
                    history: Vec::new(),
                    score: DecayValue::new(Timestamp::DAY),
                    last_support: Tick(tick),
                    since: Tick(tick),
                });
            }
        }
        // Scoring: every tracked pair, history before this tick's value.
        let counts: Vec<(u64, u64)> =
            self.states.keys().map(|&packed| (packed, self.count(tick, packed))).collect();
        for (packed, ab) in counts {
            let state = self.states.get_mut(&packed).expect("key from same map");
            let correlation = correlate(TagPair::from_packed(packed), ab);
            let shift = if ab >= MIN_SUPPORT {
                s.score(&state.history, correlation).map(|(v, _)| v).unwrap_or(0.0)
            } else {
                0.0
            };
            state.score.observe_max(now, shift);
            state.history.push(correlation);
            if state.history.len() > WINDOW {
                state.history.remove(0);
            }
            if ab >= MIN_SUPPORT {
                state.last_support = Tick(tick);
            }
        }
        // Eviction: support loss, then the global cap (weakest first).
        let before = self.states.len();
        self.states.retain(|_, state| Tick(tick).since(state.last_support) < WINDOW as u64);
        self.evicted += (before - self.states.len()) as u64;
        if self.states.len() > CAP {
            let excess = self.states.len() - CAP;
            let mut scored: Vec<(f64, u64)> =
                self.states.iter().map(|(&packed, s)| (s.score.value_at(now), packed)).collect();
            scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
            for &(_, packed) in scored.iter().take(excess) {
                self.states.remove(&packed);
                self.evicted += 1;
            }
        }
    }

    fn ranking(&self, tick: u64) -> Vec<(TagPair, f64)> {
        let now = Timestamp::from_hours(tick);
        let mut ranked: Vec<(TagPair, f64)> = self
            .states
            .iter()
            .map(|(&packed, s)| (TagPair::from_packed(packed), s.score.value_at(now)))
            .filter(|&(_, score)| score > 0.0)
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("finite").then(a.0.packed().cmp(&b.0.packed()))
        });
        ranked.truncate(TOP_K);
        ranked
    }
}

fn registry() -> ShardedPairRegistry {
    ShardedPairRegistry::with_rebalance(
        POOL,
        WINDOW,
        Timestamp::DAY,
        MIN_SUPPORT,
        CAP,
        RebalanceConfig {
            enabled: true,
            slots_per_shard: SLOTS_PER_SHARD,
            // Quiet policy: migrations are scripted through `migrate_to`.
            min_tracked_pairs: usize::MAX,
            ..RebalanceConfig::default()
        },
    )
}

/// Round-trips the registry through its standalone snapshot payload.
fn roundtrip(registry: ShardedPairRegistry) -> ShardedPairRegistry {
    let bytes = registry.snapshot_bytes();
    ShardedPairRegistry::from_snapshot_bytes(
        &bytes,
        POOL,
        WINDOW,
        Timestamp::DAY,
        MIN_SUPPORT,
        CAP,
        RebalanceConfig {
            enabled: true,
            slots_per_shard: SLOTS_PER_SHARD,
            min_tracked_pairs: usize::MAX,
            ..RebalanceConfig::default()
        },
    )
    .expect("self-produced snapshot restores")
}

proptest! {
    /// The full observable surface of the slab registry — tracked keys,
    /// correlation histories, windowed counts, rankings, eviction totals
    /// — matches the reference model at every tick close, with scripted
    /// migrations and snapshot round-trips injected between ticks.
    #[test]
    fn slab_registry_matches_reference_model(
        obs in proptest::collection::vec((0u64..8, 0u32..16, 0u32..16), 1..300),
        migrations in proptest::collection::vec(
            proptest::collection::vec(0u16..POOL as u16, SLOTS),
            0..4,
        ),
        migrate_at in proptest::collection::vec(0u64..8, 0..4),
        snapshot_at in proptest::collection::vec(0u64..8, 0..3),
    ) {
        let s = scorer();
        // Only even tags seed, so some observed pairs stay undiscovered —
        // their windowed counts must still survive migration and restore.
        let seeds: FxHashSet<TagId> = (0..40u32).filter(|a| a % 2 == 0).map(TagId).collect();
        let mut r = registry();
        let mut model = RefModel::new();
        let last_tick = obs.iter().map(|&(t, _, _)| t).max().unwrap_or(0);
        let mut observed: Vec<u64> = Vec::new();

        for tick in 0..=last_tick {
            for &(t, a, b) in &obs {
                if t == tick {
                    // Self-pairs are invalid; offset the second tag space.
                    let pair = TagPair::new(TagId(a), TagId(b + 100));
                    r.observe_pair(Tick(tick), pair.packed());
                    model.observe(tick, pair.packed());
                    observed.push(pair.packed());
                }
            }
            r.advance_to(Tick(tick));
            r.discover_seeded(&seeds, Tick(tick), 0, false);
            r.score_all(Tick(tick), Timestamp::from_hours(tick), &s, false, |p, ab| {
                correlate(p, ab)
            });
            r.evict_parallel(Tick(tick), Timestamp::from_hours(tick), false);
            model.close(tick, &seeds, &s);

            // Every close: full observable comparison.
            let keys = r.tracked_keys();
            let expected: Vec<u64> = model.states.keys().copied().collect();
            prop_assert_eq!(&keys, &expected, "tracked keys at tick {}", tick);
            prop_assert_eq!(r.evicted_total(), model.evicted, "evictions at tick {}", tick);
            for &packed in &keys {
                let pair = TagPair::from_packed(packed);
                prop_assert_eq!(
                    r.history_of(pair).expect("tracked"),
                    model.states[&packed].history.clone(),
                    "history of {} at tick {}", pair, tick
                );
                let info = r.info(pair, Tick(tick), Timestamp::from_hours(tick)).expect("tracked");
                let state = &model.states[&packed];
                prop_assert_eq!(
                    info.score.to_bits(),
                    state.score.value_at(Timestamp::from_hours(tick)).to_bits(),
                    "score of {} at tick {}", pair, tick
                );
                prop_assert_eq!(
                    info.correlation,
                    state.history.last().copied().unwrap_or(0.0),
                    "newest correlation of {} at tick {}", pair, tick
                );
                prop_assert_eq!(
                    info.tracked_ticks,
                    Tick(tick).since(state.since),
                    "tracked ticks of {} at tick {}", pair, tick
                );
            }
            observed.sort_unstable();
            observed.dedup();
            for &packed in &observed {
                prop_assert_eq!(
                    r.pair_count(TagPair::from_packed(packed)),
                    model.count(tick, packed),
                    "windowed count of {:#x} at tick {}", packed, tick
                );
            }
            prop_assert_eq!(
                r.ranking(TOP_K, Timestamp::from_hours(tick)),
                model.ranking(tick),
                "ranking at tick {}", tick
            );

            // Scripted structural events between ticks: the model has no
            // notion of either, so both must be observably invisible.
            for (index, &at) in migrate_at.iter().enumerate() {
                if at == tick {
                    if let Some(assignment) = migrations.get(index) {
                        r.migrate_to(assignment.clone());
                    }
                }
            }
            if snapshot_at.contains(&tick) {
                r = roundtrip(r);
            }
        }
    }
}
