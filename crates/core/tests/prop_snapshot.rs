//! Property tests for checkpoint/restore: serializing the engine at an
//! arbitrary point of an arbitrary stream and restoring into a fresh
//! engine must preserve *every* observable surface — windowed pair counts
//! (including observed-but-undiscovered keys), correlation histories,
//! seed sets, the routing epoch, and the ranking — and a tail replay from
//! the restore point must be byte-identical to the uninterrupted run.

use enblogue_core::config::EnBlogueConfig;
use enblogue_core::engine::EnBlogueEngine;
use enblogue_core::pairs::RebalanceConfig;
use enblogue_types::{Document, TagId, TagPair, Tick, TickSpec, Timestamp};
use proptest::prelude::*;
use std::path::PathBuf;

/// Builds the timestamp-sorted document stream of one generated case:
/// each `(tick, a, b)` observation becomes a two-tag document (the second
/// member is offset so self-pairs cannot occur).
fn docs_of(obs: &[(u64, u32, u32)]) -> Vec<Document> {
    let mut sorted: Vec<(u64, u32, u32)> = obs.to_vec();
    sorted.sort_by_key(|&(t, _, _)| t);
    sorted
        .into_iter()
        .enumerate()
        .map(|(id, (tick, a, b))| {
            Document::builder(id as u64, Timestamp::from_hours(tick))
                .tags([TagId(a), TagId(b + 100)])
                .build()
        })
        .collect()
}

fn config(shards: usize, rebalancing: bool) -> EnBlogueConfig {
    let rebalance = if rebalancing {
        RebalanceConfig {
            enabled: true,
            slots_per_shard: 4,
            target_pairs_per_shard: 4,
            min_skew: 1.01,
            cap_pressure: 0.5,
            min_tracked_pairs: 1,
            cooldown_ticks: 0,
            min_active_shards: 1,
        }
    } else {
        RebalanceConfig::disabled()
    };
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::hourly())
        .window_ticks(5)
        // A small seed set leaves some observed pairs seedless: their
        // windowed counts exist *without* tracked state and must survive
        // the snapshot round trip all the same.
        .seed_count(6)
        .min_seed_count(1)
        .top_k(12)
        .min_pair_support(1)
        .shards(shards)
        .parallel_close(false)
        .rebalance(rebalance)
        .build()
        .unwrap()
}

fn snap_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("enblogue-prop-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.snap"))
}

/// Every externally observable surface of an engine, for equality checks.
type Surface = (
    Option<enblogue_types::RankingSnapshot>,
    Vec<u64>,
    Vec<u64>,
    Vec<Option<Vec<f64>>>,
    Vec<TagId>,
    u64,
    (usize, u64, u64),
);

fn surface(engine: &EnBlogueEngine, observed: &[u64]) -> Surface {
    let registry = engine.pipeline().state().registry();
    let tracked = registry.tracked_keys();
    let counts = observed.iter().map(|&k| registry.pair_count(TagPair::from_packed(k))).collect();
    let histories = tracked.iter().map(|&k| registry.history_of(TagPair::from_packed(k))).collect();
    let stats = registry.stats();
    let metrics = engine.metrics();
    (
        engine.pipeline().latest_snapshot().cloned(),
        tracked,
        counts,
        histories,
        engine.pipeline().current_seeds(),
        stats.routing_epoch,
        (metrics.pairs_tracked, metrics.pairs_discovered, metrics.pairs_evicted),
    )
}

/// All distinct packed pair keys a case's observations can produce.
fn observed_keys(obs: &[(u64, u32, u32)]) -> Vec<u64> {
    let mut keys: Vec<u64> =
        obs.iter().map(|&(_, a, b)| TagPair::new(TagId(a), TagId(b + 100)).packed()).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

proptest! {
    /// Checkpoint at a random tick, restore, replay the tail: the final
    /// state and every intermediate ranking match the uninterrupted run.
    #[test]
    fn checkpoint_restore_preserves_every_surface(
        obs in proptest::collection::vec((0u64..8, 0u32..20, 0u32..20), 1..300),
        split in 0u64..8,
        knob in 0u32..4,
    ) {
        let shards = if knob % 2 == 0 { 1 } else { 4 };
        let rebalancing = knob >= 2;
        let cfg = config(shards, rebalancing);
        let docs = docs_of(&obs);
        let observed = observed_keys(&obs);
        let cut = docs.partition_point(|d| cfg.tick_spec.tick_of(d.timestamp).0 <= split);

        let mut uninterrupted = EnBlogueEngine::new(cfg.clone());
        let full = uninterrupted.run_replay(&docs);

        let mut first = EnBlogueEngine::new(cfg.clone());
        let head = first.run_replay(&docs[..cut]);
        let path = snap_path(&format!("case-{shards}-{rebalancing}"));
        first.checkpoint(&path).unwrap();
        drop(first);

        let mut resumed = EnBlogueEngine::resume(cfg, &path).unwrap();
        prop_assert_eq!(resumed.metrics().restores, 1);
        let tail = resumed.run_replay(&docs[cut..]);

        let mut spliced = head;
        spliced.extend(tail);
        prop_assert_eq!(&spliced, &full, "snapshot sequences diverged");
        prop_assert_eq!(
            surface(&resumed, &observed),
            surface(&uninterrupted, &observed),
            "engine surfaces diverged after restore + tail replay"
        );
    }

    /// An immediate restore (no tail) is a perfect clone of the
    /// checkpointed engine, windowed counts of seedless pairs included.
    #[test]
    fn restore_is_a_perfect_clone(
        obs in proptest::collection::vec((0u64..6, 0u32..16, 0u32..16), 1..200),
        knob in 0u32..2,
    ) {
        let cfg = config(3, knob == 1);
        let docs = docs_of(&obs);
        let observed = observed_keys(&obs);
        let mut original = EnBlogueEngine::new(cfg.clone());
        original.run_replay(&docs);
        let path = snap_path(&format!("clone-{knob}"));
        original.checkpoint(&path).unwrap();
        let resumed = EnBlogueEngine::resume(cfg, &path).unwrap();
        prop_assert_eq!(surface(&resumed, &observed), surface(&original, &observed));
    }

    /// Random corruption of a snapshot file is rejected with a typed
    /// error — any byte, anywhere — never a panic and never a silent
    /// half-restore.
    #[test]
    fn corrupted_snapshots_are_rejected_not_panicking(
        obs in proptest::collection::vec((0u64..4, 0u32..12, 0u32..12), 1..80),
        victim in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let cfg = config(2, false);
        let docs = docs_of(&obs);
        let mut engine = EnBlogueEngine::new(cfg.clone());
        engine.run_replay(&docs);
        let path = snap_path("corrupt");
        engine.checkpoint(&path).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let index = victim % raw.len();
        raw[index] ^= flip;
        std::fs::write(&path, &raw).unwrap();
        match EnBlogueEngine::resume(cfg, &path) {
            // Every corruption must surface as one of the snapshot error
            // kinds (flipping a version byte reads as a version
            // mismatch; most flips trip the checksum first).
            Err(enblogue_types::EnBlogueError::SnapshotCorrupt(_))
            | Err(enblogue_types::EnBlogueError::SnapshotVersionMismatch { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            Ok(_) => prop_assert!(false, "corrupted snapshot restored silently"),
        }
    }
}

#[test]
fn tick_cursor_survives_even_empty_engines() {
    // Degenerate but legal: checkpoint before any document or close.
    let cfg = config(1, false);
    let mut engine = EnBlogueEngine::new(cfg.clone());
    let path = snap_path("empty");
    let stats = engine.checkpoint(&path).unwrap();
    assert_eq!(stats.tick, None);
    assert_eq!(stats.tracked_pairs, 0);
    let mut resumed = EnBlogueEngine::resume(cfg, &path).unwrap();
    assert!(resumed.pipeline().latest_snapshot().is_none());
    // The restored empty engine behaves exactly like a fresh one.
    let docs = docs_of(&[(0, 1, 2), (1, 1, 2), (2, 3, 4)]);
    let mut fresh = EnBlogueEngine::new(config(1, false));
    assert_eq!(resumed.run_replay(&docs), fresh.run_replay(&docs));
    assert_eq!(resumed.metrics().ticks_closed, Tick(2).0 + 1);
}
