//! Property-based tests for the EnBlogue engine.

use enblogue_core::config::EnBlogueConfig;
use enblogue_core::engine::EnBlogueEngine;
use enblogue_types::{Document, TagId, TickSpec, Timestamp};
use proptest::prelude::*;

/// A compact random workload description: per tick, a list of documents,
/// each a list of tag ids drawn from a small universe.
fn workload() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(0u32..12, 1..5), 0..12),
        2..15,
    )
}

fn run_engine(config: EnBlogueConfig, ticks: &[Vec<Vec<u32>>]) -> EnBlogueEngine {
    let mut engine = EnBlogueEngine::new(config);
    let mut id = 0u64;
    for (t, docs) in ticks.iter().enumerate() {
        for tags in docs {
            id += 1;
            let doc = Document::builder(id, Timestamp::from_hours(t as u64))
                .tags(tags.iter().map(|&x| TagId(x)))
                .build();
            engine.process_doc(&doc);
        }
        engine.close_tick(enblogue_types::Tick(t as u64));
    }
    engine
}

fn small_config(max_pairs: usize) -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::hourly())
        .window_ticks(4)
        .seed_count(6)
        .min_seed_count(1)
        .top_k(5)
        .max_tracked_pairs(max_pairs)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rankings are sorted descending, scores positive and finite, and
    /// bounded by k.
    #[test]
    fn ranking_invariants(ticks in workload()) {
        let engine = run_engine(small_config(1000), &ticks);
        if let Some(snap) = engine.pipeline().latest_snapshot() {
            prop_assert!(snap.ranked.len() <= 5);
            for w in snap.ranked.windows(2) {
                prop_assert!(w[0].1 >= w[1].1, "ranking not sorted: {:?}", snap.ranked);
            }
            for &(pair, score) in &snap.ranked {
                prop_assert!(score.is_finite() && score > 0.0);
                prop_assert!(pair.lo() < pair.hi(), "pairs canonical");
            }
        }
    }

    /// The tracked-pair cap is a hard bound after every tick.
    #[test]
    fn pair_cap_is_enforced(ticks in workload()) {
        let engine = run_engine(small_config(3), &ticks);
        prop_assert!(engine.metrics().pairs_tracked <= 3);
    }

    /// Identical input produces identical output (bit-for-bit rankings).
    #[test]
    fn engine_is_deterministic(ticks in workload()) {
        let a = run_engine(small_config(100), &ticks);
        let b = run_engine(small_config(100), &ticks);
        prop_assert_eq!(a.pipeline().latest_snapshot(), b.pipeline().latest_snapshot());
        prop_assert_eq!(a.metrics(), b.metrics());
    }

    /// Metrics are internally consistent.
    #[test]
    fn metrics_consistent(ticks in workload()) {
        let engine = run_engine(small_config(100), &ticks);
        let m = engine.metrics();
        let total_docs: u64 = ticks.iter().map(|t| t.len() as u64).sum();
        prop_assert_eq!(m.docs_processed, total_docs);
        prop_assert_eq!(m.ticks_closed, ticks.len() as u64);
        prop_assert!(m.pairs_tracked as u64 <= m.pairs_discovered);
        prop_assert!(m.pairs_evicted <= m.pairs_discovered);
        prop_assert_eq!(
            m.pairs_discovered - m.pairs_evicted,
            m.pairs_tracked as u64,
            "discovered = tracked + evicted"
        );
    }

    /// A document stream with a single tag can never produce a ranking
    /// (there is no pair to correlate).
    #[test]
    fn single_tag_streams_never_rank(per_tick in 1usize..10, ticks in 2usize..12) {
        let workload: Vec<Vec<Vec<u32>>> = (0..ticks).map(|_| vec![vec![1u32]; per_tick]).collect();
        let engine = run_engine(small_config(100), &workload);
        let snap = engine.pipeline().latest_snapshot().unwrap();
        prop_assert!(snap.ranked.is_empty());
        prop_assert_eq!(engine.metrics().pairs_discovered, 0);
    }
}
