//! Pins the allocation-free steady-state tick close of the slab-resident
//! pair registry.
//!
//! The counting-allocator shim (`crates/compat/alloc_counter`) is this
//! binary's global allocator; its counters are process-global, so this
//! file holds exactly one `#[test]` — all scenarios run inside it, with
//! the measured sections on the test thread and serial close (a parallel
//! fan-out allocates thread stacks by design).
//!
//! Scope: the registry close cycle — window advance, seeded discovery
//! over the open-tick candidates, shift scoring across every tracked
//! pair, and eviction. Ranking *emission* is excluded: it returns a
//! freshly built `Vec` by contract. Ingest of previously seen keys is
//! also covered (lanes and candidate sets retain their capacity).

use enblogue_core::pairs::{ScoringMode, ShardedPairRegistry};
use enblogue_stats::predict::PredictorKind;
use enblogue_stats::shift::{ErrorNormalization, ShiftScorer};
use enblogue_types::{FxHashSet, TagId, TagPair, Tick, Timestamp};

#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

/// One full tick of the workload: observations for a stable pair
/// population, then the serial close cycle.
fn run_tick(registry: &mut ShardedPairRegistry, seeds: &FxHashSet<TagId>, s: &ShiftScorer, t: u64) {
    let tick = Tick(t);
    for a in 0..PAIRS {
        // Every pair is observed every few ticks (rotating), so windowed
        // support stays alive and the counter's key set stays stable.
        if (a + t as u32).is_multiple_of(3) {
            registry.observe_pair(tick, TagPair::new(TagId(a), TagId(a + 1000)).packed());
        }
    }
    registry.advance_to(tick);
    registry.discover_seeded(seeds, tick, 0, false);
    registry.score_all(tick, Timestamp::from_hours(t), s, false, |pair, ab| {
        ab as f64 / (4.0 + (pair.lo().0 % 5) as f64)
    });
    registry.evict_parallel(tick, Timestamp::from_hours(t), false);
}

const PAIRS: u32 = 512;

#[test]
fn steady_state_close_is_allocation_free() {
    let scorer = ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Absolute);
    let seeds: FxHashSet<TagId> = (0..PAIRS).map(TagId).collect();

    // A static 4-store registry; support window of 6 ticks, the rotating
    // observation schedule keeps all pairs supported, no cap pressure.
    // Scoring defaults to the lane-tiled batched path, so this scenario
    // pins the tile gather/score loop as allocation-free.
    let mut registry = ShardedPairRegistry::new(4, 6, Timestamp::DAY, 1, 10_000);
    assert_eq!(registry.scoring(), ScoringMode::Batched, "batched is the default close path");

    // Warm-up: population forms, window fills, every scratch buffer and
    // lane reaches its steady-state capacity.
    for t in 0..12u64 {
        run_tick(&mut registry, &seeds, &scorer, t);
    }
    assert_eq!(registry.len() as u32, PAIRS, "the whole population is tracked and stable");

    // Steady state: same key population, no discovery, no eviction — the
    // close cycle must not touch the allocator at all.
    let (_, allocs) = alloc_counter::measure(|| {
        for t in 12..24u64 {
            run_tick(&mut registry, &seeds, &scorer, t);
        }
    });
    assert_eq!(allocs, 0, "steady-state ingest + close must be allocation-free");
    let stats = registry.stats();
    assert_eq!(registry.len() as u32, PAIRS, "population unchanged through the measured window");
    assert_eq!(stats.evicted, 0);

    // The registry's own close-path growth counter agrees: whatever
    // growth happened, it happened during warm-up, none after.
    let close_allocs_before = stats.close_allocs;
    for t in 24..30u64 {
        run_tick(&mut registry, &seeds, &scorer, t);
    }
    assert_eq!(
        registry.stats().close_allocs,
        close_allocs_before,
        "no close-path buffer grew in steady state"
    );

    // Scenario 2: a cap-bound registry (eviction every tick). The cap
    // scratch and slab free lists must reach a fixed point too: after a
    // few capped ticks the cycle is allocation-free even though discovery
    // and cap eviction both run every tick over a *stable* key set.
    // (Population churn with brand-new keys legitimately allocates — that
    // is registry growth, not the close path.)
    let mut capped = ShardedPairRegistry::new(2, 6, Timestamp::DAY, 1, 256);
    for t in 0..12u64 {
        run_tick(&mut capped, &seeds, &scorer, t);
    }
    assert_eq!(capped.len(), 256, "the cap binds");
    let evicted_before = capped.stats().evicted;
    let (_, allocs) = alloc_counter::measure(|| {
        for t in 12..20u64 {
            run_tick(&mut capped, &seeds, &scorer, t);
        }
    });
    assert!(capped.stats().evicted > evicted_before, "cap eviction ran during the measurement");
    assert_eq!(allocs, 0, "cap-bound steady-state close must be allocation-free");

    // Scenario 3: the scalar reference path. Both scoring modes share the
    // close cycle's zero-allocation contract — the `scoring_mode` knob is
    // a pure execution choice, not a memory-behaviour one.
    let mut scalar = ShardedPairRegistry::new(4, 6, Timestamp::DAY, 1, 10_000);
    scalar.set_scoring(ScoringMode::Scalar);
    for t in 0..12u64 {
        run_tick(&mut scalar, &seeds, &scorer, t);
    }
    assert_eq!(scalar.len() as u32, PAIRS, "scalar-mode population is tracked and stable");
    let (_, allocs) = alloc_counter::measure(|| {
        for t in 12..24u64 {
            run_tick(&mut scalar, &seeds, &scorer, t);
        }
    });
    assert_eq!(allocs, 0, "scalar-mode steady-state close must be allocation-free");

    // Scenario 4: telemetry attached, cap-bound (the hardest case: every
    // measured tick records per-shard close histograms AND journals an
    // eviction event). All telemetry state — histogram buckets, the event
    // ring — is preallocated at attach/construction time, so the
    // instrumented warm close must stay allocation-free.
    let telemetry = enblogue_telemetry::Telemetry::new(64);
    let mut observed = ShardedPairRegistry::new(2, 6, Timestamp::DAY, 1, 256);
    observed.attach_telemetry(&telemetry);
    for t in 0..12u64 {
        run_tick(&mut observed, &seeds, &scorer, t);
    }
    assert_eq!(observed.len(), 256, "the cap binds under telemetry too");
    let (_, allocs) = alloc_counter::measure(|| {
        for t in 12..20u64 {
            run_tick(&mut observed, &seeds, &scorer, t);
        }
    });
    assert_eq!(allocs, 0, "telemetry-enabled steady-state close must be allocation-free");
    let shard0 = telemetry.registry().histogram_labeled("close.shard.ns", "shard", 0usize);
    assert!(shard0.count() >= 20, "per-shard close walks were recorded");
    assert!(telemetry.journal().recorded() > 0, "cap evictions were journaled");

    // Scenario 5: the serving tier's warm publish. Differential
    // measurement at the engine level: the same steady workload through
    // two engines — one bare, one with a `QueryHandle` publish stage
    // attached — must allocate *identically* in the measured window.
    // (The engine close itself allocates by contract — ranking emission
    // returns a fresh `Vec` — so the pin is equality, not zero: the
    // publish's own contribution is exactly zero, because retired views
    // are pooled and `export_view` refills their columns in place.)
    serve_publish_is_allocation_free();
}

fn serve_engine(interner: &enblogue_types::TagInterner) -> enblogue_core::engine::EnBlogueEngine {
    let config = enblogue_core::config::EnBlogueConfig::builder()
        .tick_spec(enblogue_types::TickSpec::hourly())
        .window_ticks(6)
        .seed_count(32)
        .top_k(10)
        .build()
        .unwrap();
    let _ = interner;
    enblogue_core::engine::EnBlogueEngine::new(config)
}

fn serve_publish_is_allocation_free() {
    use enblogue_serve::{QueryHandle, QueryView, ServeConfig};
    use enblogue_types::{Document, TagInterner, TagKind, TickSpec};

    let interner = TagInterner::new();
    let tags: Vec<TagId> =
        (0..64).map(|i| interner.intern(&format!("tag{i:02}"), TagKind::Hashtag)).collect();

    // A stable periodic workload (rotating co-occurrences, like
    // `run_tick`), fully materialized before any measurement.
    let mut id = 0u64;
    let per_tick: Vec<Vec<Document>> = (0..36u64)
        .map(|t| {
            (0..32u32)
                .flat_map(|a| {
                    // 1–3 observations per pair per tick, rotating, so
                    // every tag clears the seed floor and correlations
                    // keep shifting (non-empty rankings every close).
                    (0..1 + (a + t as u32) % 3).map(move |_| a)
                })
                .map(|a| {
                    id += 1;
                    Document::builder(id, Timestamp::from_hours(t))
                        .tag(tags[a as usize])
                        .tag(tags[a as usize + 32])
                        .build()
                })
                .collect()
        })
        .collect();
    assert_eq!(TickSpec::hourly().tick_of(per_tick[1][0].timestamp), Tick(1));

    let run = |engine: &mut enblogue_core::engine::EnBlogueEngine, window: std::ops::Range<u64>| {
        for t in window {
            engine.process_docs(&per_tick[t as usize]);
            let _ = engine.close_tick(Tick(t));
        }
    };

    // Bare engine: warm, then measure the steady window.
    let mut bare = serve_engine(&interner);
    run(&mut bare, 0..12);
    let (_, bare_allocs) = alloc_counter::measure(|| run(&mut bare, 12..36));

    // Serving engine: identical workload, publish stage attached.
    let mut serving = serve_engine(&interner);
    let handle = QueryHandle::attach(&mut serving, interner.clone(), ServeConfig::default());
    run(&mut serving, 0..12);
    assert!(
        handle.view().is_some_and(|v| !v.ranking().map(|s| s.ranked.is_empty()).unwrap_or(true)),
        "the workload must produce non-trivial published rankings"
    );
    let (_, serving_allocs) = alloc_counter::measure(|| run(&mut serving, 12..36));

    assert_eq!(handle.epoch(), 36, "one publish per close");
    assert_eq!(
        serving_allocs, bare_allocs,
        "a warm publish must add zero allocations to the tick close"
    );
}
