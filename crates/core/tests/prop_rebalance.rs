//! Property tests for routing-table migration: moving slot ownership
//! between shard stores — at any point, to any assignment — must preserve
//! every pair's windowed counts, correlation history, and the ranking
//! bit-for-bit. Rebalancing is an execution knob, never a semantic one.

use enblogue_core::pairs::{RebalanceConfig, ShardedPairRegistry};
use enblogue_stats::predict::PredictorKind;
use enblogue_stats::shift::{ErrorNormalization, ShiftScorer};
use enblogue_types::{FxHashSet, TagId, TagPair, Tick, Timestamp};
use proptest::prelude::*;

const POOL: usize = 4;
const SLOTS_PER_SHARD: usize = 4;
const SLOTS: usize = POOL * SLOTS_PER_SHARD;

fn registry() -> ShardedPairRegistry {
    ShardedPairRegistry::with_rebalance(
        POOL,
        5,
        Timestamp::DAY,
        1,
        10_000,
        RebalanceConfig {
            enabled: true,
            slots_per_shard: SLOTS_PER_SHARD,
            // The policy itself stays quiet; migrations in this test are
            // driven explicitly through `migrate_to`.
            min_tracked_pairs: usize::MAX,
            ..RebalanceConfig::default()
        },
    )
}

/// Replays the observation stream tick by tick, applying the scripted
/// migration after each tick close when `migrate` is set, and returns
/// every observable surface of the registry.
type Observables = (Vec<u64>, Vec<u64>, Vec<Option<Vec<f64>>>, Vec<(TagPair, f64)>);

fn run(obs: &[(u64, u32, u32)], migrations: &[Vec<u16>], migrate: bool) -> Observables {
    let mut r = registry();
    let scorer = ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Absolute);
    // Only even tags are seeds: pairs with an odd low member accumulate
    // windowed counts *without* being promoted to tracked state —
    // migrations must carry those orphan counts along too.
    let seeds: FxHashSet<TagId> = (0..24u32).filter(|a| a % 2 == 0).map(TagId).collect();
    let last_tick = obs.iter().map(|&(t, _, _)| t).max().unwrap_or(0);
    let mut observed: Vec<u64> = Vec::new();
    for tick in 0..=last_tick {
        for &(t, a, b) in obs {
            if t == tick {
                let pair = TagPair::new(TagId(a), TagId(b + 100));
                r.observe_pair(Tick(tick), pair.packed());
                observed.push(pair.packed());
            }
        }
        r.advance_to(Tick(tick));
        r.discover_seeded(&seeds, Tick(tick), 0, false);
        r.score_all(Tick(tick), Timestamp::from_hours(tick), &scorer, false, |p, ab| {
            ab as f64 / (3.0 + (p.lo().0 % 7) as f64)
        });
        r.evict_parallel(Tick(tick), Timestamp::from_hours(tick), false);
        if migrate {
            if let Some(assignment) = migrations.get(tick as usize) {
                r.migrate_to(assignment.clone());
            }
        }
    }
    observed.sort_unstable();
    observed.dedup();
    // Windowed counts of *every* observed pair, tracked or not.
    let counts = observed.iter().map(|&k| r.pair_count(TagPair::from_packed(k))).collect();
    let keys = r.tracked_keys();
    let histories = keys.iter().map(|&k| r.history_of(TagPair::from_packed(k))).collect();
    let now = Timestamp::from_hours(last_tick);
    (keys, counts, histories, r.ranking(16, now))
}

proptest! {
    /// Scripted migrations to arbitrary assignments between ticks leave
    /// every windowed count, history and ranking untouched.
    #[test]
    fn migration_preserves_every_pairs_windowed_state(
        obs in proptest::collection::vec((0u64..6, 0u32..24, 0u32..24), 1..250),
        migrations in proptest::collection::vec(
            proptest::collection::vec(0u16..POOL as u16, SLOTS),
            0..6,
        ),
    ) {
        // Self-pairs are invalid; shift the second member's tag space.
        let baseline = run(&obs, &[], false);
        let migrated = run(&obs, &migrations, true);
        prop_assert_eq!(&migrated.0, &baseline.0, "tracked keys diverged");
        prop_assert_eq!(&migrated.1, &baseline.1, "windowed counts diverged");
        prop_assert_eq!(&migrated.2, &baseline.2, "histories diverged");
        prop_assert_eq!(&migrated.3, &baseline.3, "ranking diverged");
    }

    /// The autonomous policy (maybe_rebalance every tick) is equally
    /// invisible, whatever it decides.
    #[test]
    fn autonomous_rebalancing_is_invisible(
        obs in proptest::collection::vec((0u64..6, 0u32..24, 0u32..24), 1..250),
    ) {
        let scorer = ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Absolute);
        let seeds: FxHashSet<TagId> = (0..64u32).map(TagId).collect();
        let last_tick = obs.iter().map(|&(t, _, _)| t).max().unwrap_or(0);
        let run_policy = |enabled: bool| {
            let mut r = ShardedPairRegistry::with_rebalance(
                POOL,
                5,
                Timestamp::DAY,
                1,
                10_000,
                RebalanceConfig {
                    enabled,
                    slots_per_shard: SLOTS_PER_SHARD,
                    target_pairs_per_shard: 4,
                    min_skew: 1.01,
                    min_tracked_pairs: 1,
                    cooldown_ticks: 0,
                    min_active_shards: 1,
                    ..RebalanceConfig::default()
                },
            );
            for tick in 0..=last_tick {
                for &(t, a, b) in &obs {
                    if t == tick {
                        let pair = TagPair::new(TagId(a), TagId(b + 100));
                        r.observe_pair(Tick(tick), pair.packed());
                    }
                }
                r.advance_to(Tick(tick));
                r.discover_seeded(&seeds, Tick(tick), 0, false);
                r.score_all(Tick(tick), Timestamp::from_hours(tick), &scorer, false, |p, ab| {
                    ab as f64 / (3.0 + (p.lo().0 % 7) as f64)
                });
                r.evict_parallel(Tick(tick), Timestamp::from_hours(tick), false);
                r.maybe_rebalance(Tick(tick));
            }
            let keys = r.tracked_keys();
            let counts: Vec<u64> =
                keys.iter().map(|&k| r.pair_count(TagPair::from_packed(k))).collect();
            (keys, counts, r.ranking(16, Timestamp::from_hours(last_tick)))
        };
        prop_assert_eq!(run_policy(true), run_policy(false));
    }
}
