//! The bounded ring-buffer event journal.
//!
//! Pipeline milestones (tick closes, rebalances, evictions, checkpoint
//! writes and failures, ingest stalls, restores) are rare — per tick,
//! not per document — so the journal trades the metric cells' atomics
//! for one short mutexed critical section per event. The ring is
//! preallocated at construction and events are `Copy`, so recording
//! never allocates; when the ring is full the oldest event is
//! overwritten and the drop counter advances, so a reader always knows
//! how much history it lost. Sequence numbers are monotonic across
//! overwrites, which makes journals from two dumps mergeable.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// What happened. The numeric payload of each kind is documented on the
/// variant (`a` / `b` of [`Event`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A tick closed. `a` = tracked pairs after the close, `b` = ranked
    /// pairs emitted.
    TickClose,
    /// The shard rebalancer moved load. `a` = migrated pairs, `b` =
    /// active stores after the move.
    Rebalance,
    /// Eviction ran at a tick close. `a` = pairs evicted this tick,
    /// `b` = tracked pairs remaining.
    Eviction,
    /// A checkpoint file was written. `a` = bytes written, `b` = write
    /// micros.
    CheckpointWrite,
    /// A checkpoint write failed. `a` = consecutive failures so far.
    CheckpointFailure,
    /// An ingest feeder blocked on a full worker queue. `a` = stall
    /// micros.
    IngestStall,
    /// The engine restored from a snapshot. `a` = restore micros.
    Restore,
    /// Documents dropped at a tick close for arriving beyond the
    /// event-time lateness bound (or the buffer cap). `a` = drops since
    /// the previous close, `b` = total drops so far.
    LateDrop,
    /// Exact-duplicate documents rejected by the dedup window at a tick
    /// close. `a` = rejections since the previous close, `b` = total.
    DedupDrop,
    /// Documents rejected by a source's token-bucket rate cap at a tick
    /// close. `a` = rejections since the previous close, `b` = total.
    RateCapDrop,
    /// The serving tier published a new epoch-versioned read view at a
    /// tick close. `a` = the published epoch, `b` = ranked pairs in the
    /// view.
    ViewPublish,
}

impl EventKind {
    /// Stable snake_case name (export format).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TickClose => "tick_close",
            EventKind::Rebalance => "rebalance",
            EventKind::Eviction => "eviction",
            EventKind::CheckpointWrite => "checkpoint_write",
            EventKind::CheckpointFailure => "checkpoint_failure",
            EventKind::IngestStall => "ingest_stall",
            EventKind::Restore => "restore",
            EventKind::LateDrop => "late_drop",
            EventKind::DedupDrop => "dedup_drop",
            EventKind::RateCapDrop => "rate_cap_drop",
            EventKind::ViewPublish => "view_publish",
        }
    }
}

/// One journal entry. `Copy` so the ring never owns heap state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (gaps never occur; a reader comparing
    /// `seq` spans across dumps can detect overwritten history).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// The tick the event belongs to (0 when no tick context exists,
    /// e.g. a restore before the first close).
    pub tick: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub b: u64,
}

struct Ring {
    events: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event when the ring is full.
    head: usize,
    next_seq: u64,
    dropped: u64,
}

impl Ring {
    fn record(&mut self, kind: EventKind, tick: u64, a: u64, b: u64) {
        if self.capacity == 0 {
            self.dropped += 1;
            self.next_seq += 1;
            return;
        }
        let event = Event { seq: self.next_seq, kind, tick, a, b };
        self.next_seq += 1;
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// A cheap-to-clone handle to one shared, bounded event journal.
/// Cloning shares the ring, so every pipeline layer can hold its own
/// handle.
#[derive(Clone)]
pub struct Journal {
    enabled: bool,
    ring: Arc<Mutex<Ring>>,
}

impl Journal {
    /// A journal retaining the newest `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Journal {
            enabled: true,
            ring: Arc::new(Mutex::new(Ring {
                events: Vec::with_capacity(capacity),
                capacity,
                head: 0,
                next_seq: 0,
                dropped: 0,
            })),
        }
    }

    /// A no-op handle: records are dropped, readers see nothing. All
    /// disabled handles share one static empty ring.
    pub fn disabled() -> Self {
        static RING: OnceLock<Arc<Mutex<Ring>>> = OnceLock::new();
        let ring = RING.get_or_init(|| {
            Arc::new(Mutex::new(Ring {
                events: Vec::new(),
                capacity: 0,
                head: 0,
                next_seq: 0,
                dropped: 0,
            }))
        });
        Journal { enabled: false, ring: Arc::clone(ring) }
    }

    /// Whether this handle records.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Appends one event (allocation-free; overwrites the oldest entry
    /// when full).
    pub fn record(&self, kind: EventKind, tick: u64, a: u64, b: u64) {
        if !self.enabled {
            return;
        }
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).record(kind, tick, a, b);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(ring.events.len());
        out.extend_from_slice(&ring.events[ring.head..]);
        out.extend_from_slice(&ring.events[..ring.head]);
        out
    }

    /// Total events recorded since construction (including overwritten
    /// ones).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).next_seq
    }

    /// Events lost to ring overwrites.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// The retained events as JSON lines (one object per event, oldest
    /// first), preceded by a header line carrying the drop counter.
    pub fn to_jsonl(&self) -> String {
        let (events, recorded, dropped) = {
            let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
            let mut out = Vec::with_capacity(ring.events.len());
            out.extend_from_slice(&ring.events[ring.head..]);
            out.extend_from_slice(&ring.events[..ring.head]);
            (out, ring.next_seq, ring.dropped)
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"journal\":{{\"recorded\":{recorded},\"retained\":{},\"dropped\":{dropped}}}}}",
            events.len()
        );
        for e in events {
            let _ = writeln!(
                out,
                "{{\"seq\":{},\"kind\":\"{}\",\"tick\":{},\"a\":{},\"b\":{}}}",
                e.seq,
                e.kind.name(),
                e.tick,
                e.a,
                e.b
            );
        }
        out
    }
}
