//! Exporters: Prometheus text format and JSON lines.
//!
//! Both render from one [`MetricsRegistry::visit`] pass over samples
//! taken under the bank locks, so a scrape is consistent per metric
//! (not across metrics — the pipeline keeps recording while an export
//! renders, by design).

use crate::metrics::{MetricsRegistry, Sample};
use std::fmt::Write as _;

/// Prometheus metric name: dots and any other non-`[a-zA-Z0-9_]` become
/// underscores, and everything gets the `enblogue_` namespace prefix.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("enblogue_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

fn label_block(label: Option<(&str, &str)>, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some((k, v)) = label {
        parts.push(format!("{k}=\"{v}\""));
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders the registry in the Prometheus text exposition format.
///
/// Counters and gauges are one sample line each; histograms render as
/// summaries — `quantile="0.5" / "0.9" / "0.99"` lines plus `_sum`,
/// `_count`, `_max` and `_min` series (the explicit-bucket form would
/// be ~500 lines per histogram for no scrape-side benefit at this
/// bucket granularity). `# TYPE` headers are emitted once per metric
/// name, before its first labelled series.
pub fn prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_typed: Option<String> = None;
    registry.visit(|name, label, sample| {
        let pname = prometheus_name(name);
        let type_line = |out: &mut String, kind: &str, last: &mut Option<String>| {
            if last.as_deref() != Some(pname.as_str()) {
                let _ = writeln!(out, "# TYPE {pname} {kind}");
                *last = Some(pname.clone());
            }
        };
        match sample {
            Sample::Counter(v) => {
                type_line(&mut out, "counter", &mut last_typed);
                let _ = writeln!(out, "{pname}{} {v}", label_block(label, None));
            }
            Sample::Gauge(v) => {
                type_line(&mut out, "gauge", &mut last_typed);
                let _ = writeln!(out, "{pname}{} {v}", label_block(label, None));
            }
            Sample::Histogram(snap) => {
                type_line(&mut out, "summary", &mut last_typed);
                for (q, qv) in [
                    ("0.5", snap.quantile(0.50)),
                    ("0.9", snap.quantile(0.90)),
                    ("0.99", snap.quantile(0.99)),
                ] {
                    let _ =
                        writeln!(out, "{pname}{} {qv}", label_block(label, Some(("quantile", q))));
                }
                let labels = label_block(label, None);
                let _ = writeln!(out, "{pname}_sum{labels} {}", snap.sum);
                let _ = writeln!(out, "{pname}_count{labels} {}", snap.count);
                let _ = writeln!(out, "{pname}_max{labels} {}", snap.max);
                let _ = writeln!(out, "{pname}_min{labels} {}", snap.min);
            }
        }
    });
    out
}

/// Renders the registry as JSON lines — one self-describing object per
/// metric series, dotted names preserved.
pub fn metrics_jsonl(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    registry.visit(|name, label, sample| {
        let label_json = match label {
            Some((k, v)) => format!(",\"labels\":{{\"{k}\":\"{v}\"}}"),
            None => String::new(),
        };
        match sample {
            Sample::Counter(v) => {
                let _ = writeln!(
                    out,
                    "{{\"metric\":\"{name}\",\"type\":\"counter\"{label_json},\"value\":{v}}}"
                );
            }
            Sample::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{{\"metric\":\"{name}\",\"type\":\"gauge\"{label_json},\"value\":{v}}}"
                );
            }
            Sample::Histogram(snap) => {
                let _ = writeln!(
                    out,
                    "{{\"metric\":\"{name}\",\"type\":\"histogram\"{label_json},\
                     \"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                     \"p50\":{},\"p90\":{},\"p99\":{}}}",
                    snap.count,
                    snap.sum,
                    snap.min,
                    snap.max,
                    snap.quantile(0.50),
                    snap.quantile(0.90),
                    snap.quantile(0.99)
                );
            }
        }
    });
    out
}
