//! The lock-free metric instruments and their sharded registry.
//!
//! Recording never takes a lock: every instrument handle owns an `Arc`
//! to a preallocated cell of relaxed atomics, so a counter bump is one
//! `fetch_add` and a histogram record is three. The registry's locks
//! exist only on the cold paths — registration (once, at construction
//! time) and export (when a scraper asks).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Log-linear histogram buckets
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per power of two,
/// which bounds the relative quantile error at 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range: the 8 exact values
/// below `SUB_BUCKETS`, then 8 sub-buckets for each octave up to 2^63.
pub const HISTOGRAM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Bucket index of `value` — log-linear (HDR-style): exact below 8,
/// 12.5% relative granularity above.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as u64;
    let sub = (value >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1);
    (octave * SUB_BUCKETS + sub) as usize
}

/// Inclusive lower bound of values mapping to `bucket` (inverse of
/// [`bucket_of`]).
pub fn bucket_lower_bound(bucket: usize) -> u64 {
    let bucket = bucket as u64;
    if bucket < SUB_BUCKETS {
        return bucket;
    }
    let octave = bucket / SUB_BUCKETS;
    let sub = bucket % SUB_BUCKETS;
    let msb = (octave - 1) as u32 + SUB_BITS;
    (1u64 << msb) | (sub << (msb - SUB_BITS))
}

// ---------------------------------------------------------------------------
// Cells (the shared atomic state behind each handle)
// ---------------------------------------------------------------------------

#[derive(Default)]
pub(crate) struct CounterCell {
    value: AtomicU64,
}

#[derive(Default)]
pub(crate) struct GaugeCell {
    value: AtomicI64,
}

pub(crate) struct HistogramCell {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        HistogramCell {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }
}

fn disabled_counter_cell() -> Arc<CounterCell> {
    static CELL: OnceLock<Arc<CounterCell>> = OnceLock::new();
    Arc::clone(CELL.get_or_init(|| Arc::new(CounterCell::default())))
}

fn disabled_gauge_cell() -> Arc<GaugeCell> {
    static CELL: OnceLock<Arc<GaugeCell>> = OnceLock::new();
    Arc::clone(CELL.get_or_init(|| Arc::new(GaugeCell::default())))
}

fn disabled_histogram_cell() -> Arc<HistogramCell> {
    static CELL: OnceLock<Arc<HistogramCell>> = OnceLock::new();
    Arc::clone(CELL.get_or_init(|| Arc::new(HistogramCell::new())))
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Cloning shares the underlying
/// cell; recording is a single relaxed `fetch_add`.
#[derive(Clone)]
pub struct Counter {
    enabled: bool,
    cell: Arc<CounterCell>,
}

impl Counter {
    /// A no-op handle: records are dropped, `value()` reads 0.
    pub fn disabled() -> Self {
        Counter { enabled: false, cell: disabled_counter_cell() }
    }

    /// Whether this handle records (false for [`Counter::disabled`] and
    /// handles from a disabled registry).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total.
    pub fn value(&self) -> u64 {
        if self.enabled {
            self.cell.value.load(Ordering::Relaxed)
        } else {
            0
        }
    }
}

/// A point-in-time signed value (queue depth, tracked-pair count).
#[derive(Clone)]
pub struct Gauge {
    enabled: bool,
    cell: Arc<GaugeCell>,
}

impl Gauge {
    /// A no-op handle: records are dropped, `value()` reads 0.
    pub fn disabled() -> Self {
        Gauge { enabled: false, cell: disabled_gauge_cell() }
    }

    /// Whether this handle records.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled {
            self.cell.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (negative to subtract).
    #[inline]
    pub fn add(&self, n: i64) {
        if self.enabled {
            self.cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        if self.enabled {
            self.cell.value.load(Ordering::Relaxed)
        } else {
            0
        }
    }
}

/// A fixed-bucket log-linear latency histogram. All buckets are
/// preallocated at registration, so recording is allocation-free:
/// one bucket `fetch_add`, plus count/sum/extrema updates, all relaxed.
///
/// Values are dimensionless `u64`s; the pipeline's convention is
/// **nanoseconds** for every `*.ns` metric. Because `sum` accumulates
/// exact values (only the bucket placement is approximate), derived
/// totals such as `sum()/1000` micros views are near-exact.
#[derive(Clone)]
pub struct Histogram {
    enabled: bool,
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// A no-op handle: records are dropped, snapshots are empty. All
    /// disabled handles share one static cell, so this never allocates
    /// a bucket array per handle.
    pub fn disabled() -> Self {
        Histogram { enabled: false, cell: disabled_histogram_cell() }
    }

    /// Whether this handle records — check before paying for a clock
    /// read whose result would be thrown away.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.enabled {
            return;
        }
        self.cell.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.sum.fetch_add(value, Ordering::Relaxed);
        self.cell.max.fetch_max(value, Ordering::Relaxed);
        self.cell.min.fetch_min(value, Ordering::Relaxed);
    }

    /// Records an elapsed duration in nanoseconds.
    #[inline]
    pub fn record_elapsed(&self, started: Instant) {
        if self.enabled {
            self.record(duration_ns(started));
        }
    }

    /// Starts an RAII span that records its elapsed nanoseconds here on
    /// drop. When the handle is disabled the span skips the clock read
    /// entirely.
    #[inline]
    pub fn start_span(&self) -> SpanTimer<'_> {
        SpanTimer { histogram: self, started: self.enabled.then(Instant::now) }
    }

    /// Observation count so far.
    pub fn count(&self) -> u64 {
        if self.enabled {
            self.cell.count.load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u64 {
        if self.enabled {
            self.cell.sum.load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// A consistent-enough copy of the distribution for quantile reads.
    pub fn snapshot(&self) -> HistogramSnapshot {
        if !self.enabled {
            return HistogramSnapshot::default();
        }
        let cell = &self.cell;
        let buckets: Vec<u64> = cell.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let min = cell.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count: cell.count.load(Ordering::Relaxed),
            sum: cell.sum.load(Ordering::Relaxed),
            max: cell.max.load(Ordering::Relaxed),
            min: if min == u64::MAX { 0 } else { min },
        }
    }
}

/// Nanoseconds since `started`, saturated into a `u64`.
#[inline]
pub fn duration_ns(started: Instant) -> u64 {
    let nanos = started.elapsed().as_nanos();
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

/// RAII timer from [`Histogram::start_span`] (or the [`crate::span!`]
/// macro): records the elapsed nanoseconds into its histogram on drop.
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    started: Option<Instant>,
}

impl SpanTimer<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            self.histogram.record(duration_ns(started));
        }
    }
}

/// A point-in-time copy of a histogram's distribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Observation count.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (0 if empty).
    pub max: u64,
    /// Smallest recorded value (0 if empty).
    pub min: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]` — the midpoint of the
    /// bucket holding the `ceil(q * count)`-th observation, clamped to
    /// the observed extrema (so `quantile(1.0) == max`). Relative error
    /// is bounded by the 12.5% bucket granularity. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = bucket_lower_bound(bucket);
                let width = if bucket + 1 < self.buckets.len() {
                    bucket_lower_bound(bucket + 1) - lo
                } else {
                    1
                };
                return (lo + width / 2).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean (exact sum over count), 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

pub(crate) enum Instrument {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

pub(crate) struct MetricEntry {
    pub(crate) name: String,
    /// One optional `key="value"` label (per-shard, per-stage series).
    pub(crate) label: Option<(&'static str, String)>,
    pub(crate) instrument: Instrument,
}

impl MetricEntry {
    fn key(&self) -> (&str, Option<(&str, &str)>) {
        (&self.name, self.label.as_ref().map(|(k, v)| (*k, v.as_str())))
    }
}

#[derive(Default)]
struct Bank {
    entries: Vec<MetricEntry>,
}

const BANKS: usize = 8;

/// The sharded registry of named instruments.
///
/// Registration (cold: engine construction, telemetry attach) takes one
/// bank lock keyed by the metric name's hash; re-registering the same
/// name + label returns a handle to the existing cell, so clones of an
/// engine's registry always agree. Recording happens on the returned
/// handles and never touches the registry again. A registry built
/// disabled hands out disabled handles whose record paths are a single
/// predictable branch.
#[derive(Clone)]
pub struct MetricsRegistry {
    enabled: bool,
    banks: Arc<[Mutex<Bank>; BANKS]>,
}

impl MetricsRegistry {
    /// A registry whose handles record (`enabled = true`) or drop
    /// everything (`enabled = false`).
    pub fn new(enabled: bool) -> Self {
        MetricsRegistry { enabled, banks: Arc::new(std::array::from_fn(|_| Mutex::default())) }
    }

    /// Whether handles from this registry record.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn bank(&self, name: &str) -> &Mutex<Bank> {
        // FNV-1a over the name; label variants of one metric share a bank.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.banks[(hash % BANKS as u64) as usize]
    }

    /// Finds or creates the cell for `name` + `label` under the bank
    /// lock. Panics if the name is already registered as a different
    /// instrument type — that is a naming bug, not a runtime condition.
    fn register_cell<C>(
        &self,
        name: &str,
        label: Option<(&'static str, String)>,
        cell_of: impl Fn(&MetricEntry) -> Option<Arc<C>>,
        make: impl FnOnce() -> (Arc<C>, Instrument),
    ) -> Arc<C> {
        let mut bank = self.bank(name).lock().unwrap_or_else(|e| e.into_inner());
        let key = (name, label.as_ref().map(|(k, v)| (*k, v.as_str())));
        for entry in &bank.entries {
            if entry.key() == key {
                return cell_of(entry).unwrap_or_else(|| {
                    panic!("metric {name:?} re-registered as a different instrument type")
                });
            }
        }
        let (cell, instrument) = make();
        bank.entries.push(MetricEntry { name: name.to_string(), label, instrument });
        cell
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_labeled_opt(name, None)
    }

    /// Registers (or retrieves) a counter with one label.
    pub fn counter_labeled(&self, name: &str, key: &'static str, value: impl ToString) -> Counter {
        self.counter_labeled_opt(name, Some((key, value.to_string())))
    }

    fn counter_labeled_opt(&self, name: &str, label: Option<(&'static str, String)>) -> Counter {
        if !self.enabled {
            return Counter::disabled();
        }
        let cell = self.register_cell(
            name,
            label,
            |e| match &e.instrument {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let cell = Arc::new(CounterCell::default());
                (Arc::clone(&cell), Instrument::Counter(cell))
            },
        );
        Counter { enabled: self.enabled, cell }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::disabled();
        }
        let cell = self.register_cell(
            name,
            None,
            |e| match &e.instrument {
                Instrument::Gauge(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let cell = Arc::new(GaugeCell::default());
                (Arc::clone(&cell), Instrument::Gauge(cell))
            },
        );
        Gauge { enabled: self.enabled, cell }
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_labeled_opt(name, None)
    }

    /// Registers (or retrieves) a histogram with one label (e.g. the
    /// per-shard `close.shard.ns{shard="3"}` series).
    pub fn histogram_labeled(
        &self,
        name: &str,
        key: &'static str,
        value: impl ToString,
    ) -> Histogram {
        self.histogram_labeled_opt(name, Some((key, value.to_string())))
    }

    fn histogram_labeled_opt(
        &self,
        name: &str,
        label: Option<(&'static str, String)>,
    ) -> Histogram {
        if !self.enabled {
            return Histogram::disabled();
        }
        let cell = self.register_cell(
            name,
            label,
            |e| match &e.instrument {
                Instrument::Histogram(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let cell = Arc::new(HistogramCell::new());
                (Arc::clone(&cell), Instrument::Histogram(cell))
            },
        );
        Histogram { enabled: self.enabled, cell }
    }

    /// Visits every registered metric in name order (label order within
    /// a name) with a read-only sample. Used by the exporters.
    pub(crate) fn visit(&self, mut f: impl FnMut(&str, Option<(&str, &str)>, Sample<'_>)) {
        type OrderedSample = (String, Option<(&'static str, String)>, SampleOwned);
        let mut ordered: Vec<OrderedSample> = Vec::new();
        for bank in self.banks.iter() {
            let bank = bank.lock().unwrap_or_else(|e| e.into_inner());
            for entry in &bank.entries {
                let sample = match &entry.instrument {
                    Instrument::Counter(c) => SampleOwned::Counter(c.value.load(Ordering::Relaxed)),
                    Instrument::Gauge(c) => SampleOwned::Gauge(c.value.load(Ordering::Relaxed)),
                    Instrument::Histogram(c) => {
                        let handle = Histogram { enabled: true, cell: Arc::clone(c) };
                        SampleOwned::Histogram(handle.snapshot())
                    }
                };
                ordered.push((entry.name.clone(), entry.label.clone(), sample));
            }
        }
        ordered.sort_by(|a, b| {
            (&a.0, a.1.as_ref().map(|(_, v)| v)).cmp(&(&b.0, b.1.as_ref().map(|(_, v)| v)))
        });
        for (name, label, sample) in &ordered {
            let label = label.as_ref().map(|(k, v)| (*k, v.as_str()));
            let borrowed = match sample {
                SampleOwned::Counter(v) => Sample::Counter(*v),
                SampleOwned::Gauge(v) => Sample::Gauge(*v),
                SampleOwned::Histogram(s) => Sample::Histogram(s),
            };
            f(name, label, borrowed);
        }
    }

    /// Renders all label-less counters and gauges as `name value` debug
    /// lines (tests, quick dumps).
    pub fn debug_dump(&self) -> String {
        let mut out = String::new();
        self.visit(|name, label, sample| {
            if label.is_none() {
                match sample {
                    Sample::Counter(v) => {
                        let _ = writeln!(out, "{name} {v}");
                    }
                    Sample::Gauge(v) => {
                        let _ = writeln!(out, "{name} {v}");
                    }
                    Sample::Histogram(_) => {}
                }
            }
        });
        out
    }
}

/// A read-only view of one metric's current value, passed to
/// [`MetricsRegistry::visit`] callbacks.
pub(crate) enum Sample<'a> {
    Counter(u64),
    Gauge(i64),
    Histogram(&'a HistogramSnapshot),
}

enum SampleOwned {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}
