//! Observability substrate for the EnBlogue pipeline: a lock-free
//! metrics registry (counters, gauges, log-linear latency histograms),
//! RAII span timing, a bounded event journal, and Prometheus/JSONL
//! exporters.
//!
//! Design rules, in priority order:
//!
//! 1. **Recording never takes a lock.** Metric handles are `Arc`s to
//!    preallocated cells of relaxed atomics; a histogram record is a
//!    handful of `fetch_add`s on fixed buckets. The only mutex in the
//!    warm vicinity guards the event journal, whose cadence is per tick
//!    close, not per document.
//! 2. **Recording never allocates.** Histogram buckets (log-linear,
//!    HDR-style, 8 sub-buckets per octave, ≤12.5% relative error) are
//!    preallocated at registration; journal events are `Copy` into a
//!    preallocated ring. This keeps the engine's zero-allocation warm
//!    close intact with telemetry enabled (pinned by
//!    `crates/core/tests/close_allocs.rs`).
//! 3. **Off costs (almost) nothing.** Every handle carries an inline
//!    `enabled` flag; a disabled record path is one predictable branch,
//!    and disabled spans skip the clock read too. Disabled handles all
//!    share static cells, so they are free to create.
//! 4. **Telemetry is invisible in results.** Nothing here feeds back
//!    into scoring; `tests/stage_parity.rs` pins rankings byte-identical
//!    with telemetry on and off.
//!
//! The metric naming scheme is dotted lowercase (`close.score.ns`,
//! `ingest.stall.ns`), with the unit as the last segment; exporters
//! sanitize for their format. See `docs/OBSERVABILITY.md` for the full
//! catalog.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod journal;
mod metrics;

pub use journal::{Event, EventKind, Journal};
pub use metrics::{
    bucket_lower_bound, bucket_of, duration_ns, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, SpanTimer, HISTOGRAM_BUCKETS,
};

/// Starts an RAII span recording into a pre-registered [`Histogram`]
/// handle when it drops: `let _span = span!(self.probes.close_score);`.
///
/// Spans are named by their histogram's registered name (the
/// `"close.score"` in `span!("close.score", shard)`-style call sites
/// lives at registration time, where the handle was created — keeping
/// the warm path free of name lookups).
#[macro_export]
macro_rules! span {
    ($histogram:expr) => {
        $histogram.start_span()
    };
}

/// One engine's telemetry: the metric registry plus the event journal.
///
/// Cheap to clone (handles share state), so every pipeline layer —
/// stages, the pair registry, the ingest pipeline — can hold its own
/// copy and register the instruments it owns.
#[derive(Clone)]
pub struct Telemetry {
    enabled: bool,
    registry: MetricsRegistry,
    journal: Journal,
}

impl Telemetry {
    /// An enabled telemetry hub whose journal retains
    /// `journal_capacity` events.
    pub fn new(journal_capacity: usize) -> Self {
        Telemetry {
            enabled: true,
            registry: MetricsRegistry::new(true),
            journal: Journal::new(journal_capacity),
        }
    }

    /// A disabled hub: every handle it hands out is a no-op and exports
    /// render empty.
    pub fn disabled() -> Self {
        Telemetry {
            enabled: false,
            registry: MetricsRegistry::new(false),
            journal: Journal::disabled(),
        }
    }

    /// Whether instruments from this hub record.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The metric registry (register instruments, export).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The shared event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Prometheus text exposition of every registered metric.
    pub fn prometheus_text(&self) -> String {
        export::prometheus_text(&self.registry)
    }

    /// JSON-lines rendering of every registered metric.
    pub fn metrics_jsonl(&self) -> String {
        export::metrics_jsonl(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotonic_and_invertible() {
        // Exact below 8.
        for v in 0..8u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
        // Lower bounds invert their own bucket, and boundaries are
        // monotonic across the whole range.
        let mut last = 0usize;
        for shift in 3..64u32 {
            for sub in 0..8u64 {
                let v = (1u64 << shift) | (sub << (shift - 3));
                let b = bucket_of(v);
                assert_eq!(bucket_lower_bound(b), v, "lower bound of bucket {b}");
                assert!(b >= last, "buckets must be monotonic");
                last = b;
            }
        }
        // Every value maps into a bucket whose range contains it.
        for v in [0u64, 1, 7, 8, 9, 100, 1_000, 123_456, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(b < HISTOGRAM_BUCKETS);
            assert!(bucket_lower_bound(b) <= v);
            if b + 1 < HISTOGRAM_BUCKETS {
                assert!(v < bucket_lower_bound(b + 1), "value {v} above bucket {b}");
            }
        }
    }

    #[test]
    fn histogram_quantiles_and_extrema() {
        let registry = MetricsRegistry::new(true);
        let h = registry.histogram("test.latency.ns");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.quantile(1.0), 1000, "p100 clamps to max");
        // Log-linear granularity bounds the relative error at 12.5%.
        let p50 = snap.p50() as f64;
        assert!((p50 - 500.0).abs() / 500.0 <= 0.125, "p50 estimate {p50}");
        let p99 = snap.p99() as f64;
        assert!((p99 - 990.0).abs() / 990.0 <= 0.125, "p99 estimate {p99}");
        assert_eq!(snap.mean(), 500);
    }

    #[test]
    fn registration_is_idempotent_and_type_checked() {
        let registry = MetricsRegistry::new(true);
        let a = registry.counter("docs");
        let b = registry.counter("docs");
        a.add(3);
        b.inc();
        assert_eq!(a.value(), 4, "same name shares one cell");
        let s1 = registry.histogram_labeled("close.shard.ns", "shard", 0);
        let s2 = registry.histogram_labeled("close.shard.ns", "shard", 1);
        s1.record(10);
        assert_eq!(s2.count(), 0, "label variants are distinct series");
        assert_eq!(registry.histogram_labeled("close.shard.ns", "shard", 0).count(), 1);
    }

    #[test]
    #[should_panic(expected = "different instrument type")]
    fn re_registering_as_other_type_panics() {
        let registry = MetricsRegistry::new(true);
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn disabled_handles_are_inert() {
        let t = Telemetry::disabled();
        let c = t.registry().counter("docs");
        let g = t.registry().gauge("depth");
        let h = t.registry().histogram("lat.ns");
        c.inc();
        g.set(7);
        h.record(123);
        {
            let _span = span!(h);
        }
        t.journal().record(EventKind::TickClose, 1, 2, 3);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), 0);
        assert!(t.journal().events().is_empty());
        assert_eq!(t.prometheus_text(), "");
    }

    #[test]
    fn span_records_elapsed_nanos() {
        let t = Telemetry::new(16);
        let h = t.registry().histogram("span.ns");
        {
            let _span = span!(h);
            std::hint::black_box(0u64);
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() > 0, "a span records a positive elapsed time");
    }

    #[test]
    fn journal_ring_overwrites_oldest_and_counts_drops() {
        let j = Journal::new(4);
        for i in 0..10u64 {
            j.record(EventKind::TickClose, i, i * 10, 0);
        }
        let events = j.events();
        assert_eq!(events.len(), 4);
        assert_eq!(j.recorded(), 10);
        assert_eq!(j.dropped(), 6);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest four retained, oldest first");
        assert_eq!(events[0].tick, 6);
        let jsonl = j.to_jsonl();
        assert!(jsonl.starts_with("{\"journal\":{\"recorded\":10,\"retained\":4,\"dropped\":6}}"));
        assert!(jsonl.contains("\"kind\":\"tick_close\""));
    }

    #[test]
    fn prometheus_export_shape() {
        let t = Telemetry::new(16);
        t.registry().counter("engine.docs").add(42);
        t.registry().gauge("pairs.tracked").set(512);
        let h0 = t.registry().histogram_labeled("close.shard.ns", "shard", 0);
        let h1 = t.registry().histogram_labeled("close.shard.ns", "shard", 1);
        h0.record(1_000);
        h1.record(2_000);
        let text = t.prometheus_text();
        assert!(text.contains("# TYPE enblogue_engine_docs counter\nenblogue_engine_docs 42\n"));
        assert!(text.contains("# TYPE enblogue_pairs_tracked gauge\nenblogue_pairs_tracked 512\n"));
        assert!(text.contains("# TYPE enblogue_close_shard_ns summary\n"));
        assert_eq!(
            text.matches("# TYPE enblogue_close_shard_ns summary").count(),
            1,
            "one TYPE header across label variants"
        );
        assert!(text.contains("enblogue_close_shard_ns{shard=\"0\",quantile=\"0.5\"}"));
        assert!(text.contains("enblogue_close_shard_ns_sum{shard=\"1\"} 2000"));
        assert!(text.contains("enblogue_close_shard_ns_count{shard=\"0\"} 1"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(series.starts_with("enblogue_"), "namespaced: {line}");
            assert!(value.parse::<i64>().is_ok(), "numeric sample: {line}");
        }
        let jsonl = t.metrics_jsonl();
        assert!(jsonl.contains("{\"metric\":\"engine.docs\",\"type\":\"counter\",\"value\":42}"));
        assert!(jsonl.contains(
            "{\"metric\":\"close.shard.ns\",\"type\":\"histogram\",\"labels\":{\"shard\":\"0\"}"
        ));
    }

    #[test]
    fn histograms_record_across_threads_without_loss() {
        let t = Telemetry::new(16);
        let h = t.registry().histogram("mt.ns");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in 1..=1000u64 {
                        h.record(v);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().expect("recorder thread");
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000, "relaxed atomics still lose nothing");
        assert_eq!(snap.sum, 4 * 500_500);
        assert_eq!(snap.max, 1000);
    }
}
